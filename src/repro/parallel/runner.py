"""Sweep runners: execute batches of independent simulation jobs.

A *job* is any picklable zero-argument callable returning a picklable
value (see :mod:`repro.parallel.jobs` for the standard job shapes).  A
:class:`SweepRunner` executes a batch of jobs and returns their results
**in submission order** — never in completion order — so a parallel sweep
is a drop-in replacement for a serial loop: because every job is an
independent deterministic simulation, the merged result list is
bit-identical to what the serial loop would have produced.

Two implementations share the interface:

* :class:`SerialRunner` — runs the jobs in-process, in order.  Zero
  overhead, no picklability requirement; the reference semantics.
* :class:`ProcessPoolRunner` — fans the jobs out over a
  ``concurrent.futures.ProcessPoolExecutor`` with chunked scheduling,
  a per-job wall-clock timeout, and bounded retries for wedged or
  crashed workers.  Jobs (and their results) must be picklable:
  module-level functions or dataclass instances, not bare closures.

Timeout/retry semantics (documented contract, tested in
``tests/test_parallel.py``):

* ``timeout`` is a per-job budget in wall-clock seconds.  A scheduling
  round is abandoned when its jobs collectively exceed their cumulative
  budget; the unfinished chunks are retried on a fresh pool (wedged
  worker processes are terminated, not awaited).
* each chunk is retried at most ``retries`` times; after that a
  :class:`SweepError` is raised naming the job indices that never
  completed.  A deterministic job that wedges will wedge on every
  attempt — retries exist for infrastructure failures (a worker killed
  by the OS, a broken pool), not to paper over simulation hangs.
* a job that *raises* is an application error, not an infrastructure
  failure: the exception propagates to the caller immediately and is
  never retried (deterministic jobs would fail identically again).
"""

from __future__ import annotations

import math
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, Sequence

#: A sweep job: picklable, zero-argument, returns a picklable result.
SweepJob = Callable[[], Any]

_UNSET = object()


class SweepError(RuntimeError):
    """Jobs could not be completed after exhausting all retries.

    Attributes
    ----------
    indices:
        Submission-order indices of the jobs that never produced a result.
    """

    def __init__(self, message: str, indices: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.indices = list(indices)


#: Default jobs-per-window for :meth:`SweepRunner.run_stream` — big
#: enough to amortize pool IPC and batched cache lookups, small enough
#: that a 10^6-job campaign never holds more than one window of jobs
#: and results in memory.
DEFAULT_STREAM_WINDOW = 1024


class SweepRunner:
    """Executes a batch of independent jobs, results in submission order.

    After :meth:`run` returns, :attr:`job_retries` holds one int per job
    (submission order): how many times the chunk carrying that job was
    re-submitted.  Always zero for serial runs; the telemetry layer
    (:mod:`repro.obs.telemetry`) reads it to attribute infrastructure
    retries to jobs.  It is a per-*instance* list — two runners never
    alias each other's retry accounting (regression-tested).
    """

    def __init__(self) -> None:
        #: Per-job retry counts of the most recent :meth:`run` (see above).
        self.job_retries: list[int] = []

    def run(self, jobs: Sequence[SweepJob]) -> list[Any]:  # pragma: no cover
        raise NotImplementedError

    def run_stream(
        self, jobs: Iterable[SweepJob], *, window: int | None = None
    ) -> Iterator[Any]:
        """Incremental :meth:`run`: yield results in submission order
        while consuming *jobs* lazily, at most *window* jobs in flight.

        Same semantics as :meth:`run` — submission-order results,
        chunking/timeout/retries per window, application errors raised
        at the offending result's position — but neither the job list
        nor the result list is ever materialized beyond one window, so
        a 10^6-config campaign runs in O(window) memory.

        :attr:`job_retries` grows as results are yielded (one entry per
        job yielded so far) and is complete when the iterator is
        exhausted, so streamed telemetry sees the same counts as a
        materialized run.
        """
        window = int(window) if window is not None else self._stream_window()
        if window < 1:
            raise ValueError("window must be >= 1")
        it = iter(jobs)
        retries: list[int] = []
        self.job_retries = retries
        while True:
            batch = list(islice(it, window))
            if not batch:
                return
            results = self.run(batch)
            # run() replaced job_retries with this batch's counts; fold
            # them into the cumulative stream-wide list.
            retries.extend(self.job_retries)
            self.job_retries = retries
            yield from results

    def _stream_window(self) -> int:
        """Default in-flight window for :meth:`run_stream`."""
        return DEFAULT_STREAM_WINDOW

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Convenience: run ``fn`` once per item (``fn`` must be picklable
        for pooled runners; use a module-level function or partial)."""
        return self.run([_BoundJob(fn, item) for item in items])


@dataclass(frozen=True)
class _BoundJob:
    """Picklable ``fn(item)`` thunk used by :meth:`SweepRunner.map`."""

    fn: Callable[[Any], Any]
    item: Any

    def __call__(self) -> Any:
        return self.fn(self.item)


class SerialRunner(SweepRunner):
    """Run every job in-process, in submission order (reference runner)."""

    def run(self, jobs: Sequence[SweepJob]) -> list[Any]:
        self.job_retries = [0] * len(jobs)
        return [job() for job in jobs]

    def run_stream(
        self, jobs: Iterable[SweepJob], *, window: int | None = None
    ) -> Iterator[Any]:
        # Fully lazy: one job in memory at a time, no window needed.
        retries: list[int] = []
        self.job_retries = retries
        for job in jobs:
            result = job()
            retries.append(0)
            yield result


def _run_chunk(jobs: Sequence[SweepJob]) -> list[Any]:
    """Worker-side entry point: execute one chunk of jobs in order."""
    return [job() for job in jobs]


@dataclass
class ProcessPoolRunner(SweepRunner):
    """Fan jobs out across worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``workers=1`` still uses a pool (one
        worker) — useful for verifying that jobs survive the process
        boundary; use :class:`SerialRunner` for a true in-process run.
    chunk_size:
        Jobs per pool task.  ``None`` auto-chunks to roughly four tasks
        per worker, balancing IPC overhead against load balance.
    timeout:
        Per-job wall-clock budget in seconds (``None``: no timeout).
    retries:
        How many times a failed/timed-out chunk is re-submitted on a
        fresh pool before :class:`SweepError` is raised.
    mp_context:
        ``multiprocessing`` start-method name (``"fork"``, ``"spawn"``,
        ``"forkserver"``).  ``None`` picks ``"fork"`` where available
        (cheap, inherits imported modules) and the platform default
        elsewhere.
    """

    workers: int
    chunk_size: int | None = None
    timeout: float | None = None
    retries: int = 1
    mp_context: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        # The dataclass-generated __init__ bypasses SweepRunner.__init__.
        self.job_retries = []

    def _stream_window(self) -> int:
        # Keep every worker busy across a window: explicit chunk sizes
        # scale the window, auto-chunking gets the shared default.
        if self.chunk_size is not None:
            return max(DEFAULT_STREAM_WINDOW, self.chunk_size * self.workers * 4)
        return max(DEFAULT_STREAM_WINDOW, self.workers * 128)

    # -- pool plumbing -----------------------------------------------------

    def _context(self):
        import multiprocessing as mp

        if self.mp_context is not None:
            return mp.get_context(self.mp_context)
        if "fork" in mp.get_all_start_methods():
            return mp.get_context("fork")
        return mp.get_context()

    @staticmethod
    def _kill_pool(executor: ProcessPoolExecutor) -> None:
        """Abandon a pool that may contain wedged workers.

        ``shutdown(wait=True)`` would block behind the wedged job, so the
        worker processes are terminated outright and the executor is told
        not to wait for them.
        """
        processes = getattr(executor, "_processes", None) or {}
        for proc in list(processes.values()):
            proc.terminate()
        executor.shutdown(wait=False, cancel_futures=True)

    # -- scheduling --------------------------------------------------------

    def run(self, jobs: Sequence[SweepJob]) -> list[Any]:
        jobs = list(jobs)
        if not jobs:
            return []
        chunk = self.chunk_size or max(
            1, math.ceil(len(jobs) / (self.workers * 4))
        )
        #: (start_index, jobs_slice) descriptors; a chunk is the retry unit.
        chunks = [
            (i, jobs[i : i + chunk]) for i in range(0, len(jobs), chunk)
        ]
        results: list[Any] = [_UNSET] * len(jobs)
        attempts = {start: 0 for start, _ in chunks}
        pending = chunks
        while pending:
            # Sort by start index: _run_round collects failures in future
            # completion order (a set walk — effectively arbitrary), and
            # both the retry submissions and the exhausted-chunk raise
            # below must not depend on that order for attribution to be
            # deterministic.
            pending = sorted(self._run_round(pending, results))
            for start, part in pending:
                attempts[start] += 1
                if attempts[start] > self.retries:
                    indices = [
                        start + k
                        for k in range(len(part))
                        if results[start + k] is _UNSET
                    ]
                    raise SweepError(
                        f"{len(indices)} job(s) did not complete after "
                        f"{self.retries} retr{'y' if self.retries == 1 else 'ies'} "
                        f"(indices {indices}); a deterministic job that "
                        f"exceeds its timeout will do so on every attempt",
                        indices=indices,
                    )
        self.job_retries = [0] * len(jobs)
        for start, part in chunks:
            for k in range(len(part)):
                self.job_retries[start + k] = attempts[start]
        return results

    def _run_round(
        self,
        chunks: list[tuple[int, list[SweepJob]]],
        results: list[Any],
    ) -> list[tuple[int, list[SweepJob]]]:
        """Submit *chunks* on a fresh pool; fill *results*; return the
        chunks that must be retried (timed out or lost to a broken pool)."""
        executor = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._context()
        )
        futures: dict[Future, tuple[int, list[SweepJob]]] = {}
        try:
            for start, part in chunks:
                futures[executor.submit(_run_chunk, part)] = (start, part)
            deadline_at = None
            if self.timeout is not None:
                total = sum(len(part) for _s, part in chunks)
                # Cumulative budget: jobs run `workers` at a time, so the
                # round as a whole gets ceil(total/workers) job-budgets
                # (plus one for scheduling slack).
                budget = self.timeout * (math.ceil(total / self.workers) + 1)
                deadline_at = time.monotonic() + budget
            failed: list[tuple[int, list[SweepJob]]] = []
            broken = False
            not_done = set(futures)
            while not_done:
                remaining = None
                if deadline_at is not None:
                    remaining = deadline_at - time.monotonic()
                    if remaining <= 0:  # budget exhausted, jobs still running
                        failed.extend(futures[f] for f in not_done)
                        self._kill_pool(executor)
                        return failed
                done, not_done = wait(
                    not_done, timeout=remaining, return_when=FIRST_COMPLETED
                )
                for fut in done:
                    start, part = futures[fut]
                    exc = fut.exception()
                    if exc is None:
                        for k, value in enumerate(fut.result()):
                            results[start + k] = value
                    elif isinstance(exc, BrokenProcessPool):
                        failed.append((start, part))
                        broken = True
                    else:
                        # Application error: deterministic, never retried.
                        self._kill_pool(executor)
                        raise exc
                if broken:
                    # The pool is dead; everything unfinished is lost.
                    failed.extend(futures[f] for f in not_done)
                    self._kill_pool(executor)
                    return failed
            executor.shutdown(wait=True)
            return failed
        except BaseException:
            self._kill_pool(executor)
            raise


def make_runner(
    workers: int | None = None,
    *,
    chunk_size: int | None = None,
    timeout: float | None = None,
    retries: int = 1,
    mp_context: str | None = None,
    cache: Any = None,
) -> SweepRunner:
    """Build the right runner for a worker count.

    ``workers`` of ``None``, ``0`` or ``1`` gives the in-process
    :class:`SerialRunner`; anything larger gives a
    :class:`ProcessPoolRunner`.  (Construct :class:`ProcessPoolRunner`
    directly to force a single-worker pool.)

    ``cache`` (``True`` for the default directory, a path, or a
    ``repro.cache.RunCache``) wraps either runner in a
    ``repro.cache.CachedRunner``: jobs implementing the cache contract
    (see :mod:`repro.parallel.jobs`) are answered from the
    content-addressed store, everything else executes as usual.  Serial
    and pooled runners share the same store and the same
    submission-order merge, so a cached sweep's report is byte-identical
    to an uncached one.
    """
    runner: SweepRunner
    if workers is None or workers <= 1:
        runner = SerialRunner()
    else:
        runner = ProcessPoolRunner(
            workers=workers,
            chunk_size=chunk_size,
            timeout=timeout,
            retries=retries,
            mp_context=mp_context,
        )
    if cache is not None and cache is not False:
        # Imported lazily: repro.cache.runner imports this module.
        from ..cache import CachedRunner, RunCache

        runner = CachedRunner(cache=RunCache.at(cache), inner=runner)
    return runner
