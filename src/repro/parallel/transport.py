"""Transport seam: how a sweep runner ships chunks to its workers.

:class:`~repro.parallel.runner.TransportRunner` owns everything that
makes a sweep *correct* — chunked scheduling, submission-order merge,
the cumulative timeout budget, bounded retries with deterministic
attribution — and delegates everything that makes it *go* to a
:class:`Transport`:

* :class:`LocalPoolTransport` — the original in-process
  ``concurrent.futures.ProcessPoolExecutor`` backend, refactored onto
  the seam unchanged (``ProcessPoolRunner`` is pinned byte-identical to
  the serial runner by ``tests/test_parallel.py``).
* :class:`repro.parallel.remote.RemoteTransport` — a socket worker
  fleet speaking length-prefixed compressed-pickle frames, with
  worker-side cache lookups and heartbeat liveness.

The retry unit is the *chunk*: a transport reports a chunk either as
completed (with its in-order results), as *lost* (an infrastructure
failure — worker process died, socket closed, pool broke), or raises
the job's own exception (an application error, which the runner never
retries).  Lost chunks flow back into the runner's existing
retry/attribution machinery, so a dead socket worker is handled by the
very same code path as a worker process killed by the OS.

A :class:`Transport` is persistent across scheduling rounds (it may
accumulate per-worker statistics); each round opens a fresh
:class:`TransportRound`, mirroring the original design of building a
fresh pool per round so that wedged workers from a previous attempt
cannot poison the retry.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from ..obs.spans import SpanRecorder, active as spans_active, outcome_label, recording

#: A sweep job as the transport sees it (re-declared here to avoid a
#: circular import with :mod:`repro.parallel.runner`).
SweepJob = Callable[[], Any]

#: A chunk descriptor: ``(start_index, jobs_slice)``.
Chunk = tuple[int, list]

#: A completion event: ``(start_index, jobs_slice, values_or_None)``.
#: ``values`` is the chunk's in-order result list, or ``None`` if the
#: chunk was lost to an infrastructure failure and must be retried.
ChunkEvent = tuple[int, list, "list | None"]


def run_chunk(jobs: Sequence[SweepJob]) -> list[Any]:
    """Worker-side entry point: execute one chunk of jobs in order.

    Shared by every transport — the pool submits it as the task
    callable, the socket worker calls it on received chunks.
    """
    return [job() for job in jobs]


def run_chunk_traced(
    jobs: Sequence[SweepJob], base: int = 0
) -> tuple[list[Any], list[dict], int]:
    """Span-recording variant of :func:`run_chunk`, submitted instead of
    it when the parent has an active recorder.

    Runs with a fresh worker-local recorder (never the recorder a fork
    may have inherited) and returns
    ``(values, exported_spans, worker_pid)``: one ``job`` span per job,
    carrying the campaign-global index (``base`` + offset) and the
    outcome class, under a ``chunk.exec`` root the parent re-anchors
    onto this worker's track.
    """
    recorder = SpanRecorder(kind="chunk")
    with recording(recorder):
        with recorder.span(
            "chunk.exec", "exec", attrs={"jobs": len(jobs)}
        ) as root:
            values = []
            for offset, job in enumerate(jobs):
                with recorder.span(
                    "job", "job", parent=root.id,
                    attrs={"index": base + offset},
                ) as span:
                    value = job()
                    span.attrs["outcome"] = outcome_label(value)
                values.append(value)
    return values, recorder.export_raw(), os.getpid()


class TransportRound:
    """One scheduling round: a batch of chunks in flight on fresh workers.

    Lifecycle: ``submit()`` every chunk, then loop ``wait()`` while
    ``pending()`` is non-empty, then ``close()``.  ``abandon()`` at any
    point tears the round down without waiting for wedged workers.
    """

    #: Set when the round has lost all execution capacity (broken pool,
    #: every socket worker dead): the caller must treat every still
    #: pending chunk as lost and abandon the round.
    broken: bool = False

    def submit(self, start: int, jobs: list) -> None:  # pragma: no cover
        raise NotImplementedError

    def pending(self) -> list[Chunk]:  # pragma: no cover
        """Chunks submitted but not yet reported by :meth:`wait`."""
        raise NotImplementedError

    def wait(self, timeout: float | None) -> list[ChunkEvent]:
        """Block up to *timeout* seconds (``None``: forever) for progress.

        Returns the completion events since the last call — possibly
        empty on timeout.  A job that raised propagates its exception
        from here: application errors are deterministic and must reach
        the caller immediately, never the retry path.
        """
        raise NotImplementedError  # pragma: no cover

    def abandon(self) -> None:  # pragma: no cover
        """Tear down without waiting (terminates wedged workers)."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover
        """Graceful shutdown after every chunk completed."""
        raise NotImplementedError


class Transport:
    """Factory for scheduling rounds against some worker substrate."""

    def parallelism(self) -> int:  # pragma: no cover
        """How many chunks can execute concurrently (drives the
        auto-chunking formula and the cumulative timeout budget)."""
        raise NotImplementedError

    def open_round(self) -> TransportRound:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release any persistent resources (default: none)."""


# -- local process pool ------------------------------------------------------


def kill_pool(executor: ProcessPoolExecutor) -> None:
    """Abandon a pool that may contain wedged workers.

    ``shutdown(wait=True)`` would block behind the wedged job, so the
    worker processes are terminated outright and the executor is told
    not to wait for them.
    """
    processes = getattr(executor, "_processes", None) or {}
    for proc in list(processes.values()):
        proc.terminate()
    executor.shutdown(wait=False, cancel_futures=True)


class LocalPoolTransport(Transport):
    """The in-process ``ProcessPoolExecutor`` backend.

    Each round builds a fresh pool (so retries never land on a pool
    with wedged workers from the previous attempt) and terminates the
    worker processes outright on abandon.
    """

    def __init__(self, workers: int, mp_context: str | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.mp_context = mp_context

    def parallelism(self) -> int:
        return self.workers

    def _context(self):
        import multiprocessing as mp

        if self.mp_context is not None:
            return mp.get_context(self.mp_context)
        if "fork" in mp.get_all_start_methods():
            return mp.get_context("fork")
        return mp.get_context()

    def open_round(self) -> "LocalPoolRound":
        executor = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._context()
        )
        return LocalPoolRound(executor)


class LocalPoolRound(TransportRound):
    def __init__(self, executor: ProcessPoolExecutor) -> None:
        self.executor = executor
        self.broken = False
        self._futures: dict[Future, Chunk] = {}
        self._not_done: set[Future] = set()
        self._traced: set[Future] = set()

    def submit(self, start: int, jobs: list) -> None:
        recorder = spans_active()
        if recorder is None:
            fut = self.executor.submit(run_chunk, jobs)
        else:
            fut = self.executor.submit(
                run_chunk_traced, jobs, start + recorder.index_offset
            )
            self._traced.add(fut)
        self._futures[fut] = (start, jobs)
        self._not_done.add(fut)

    def pending(self) -> list[Chunk]:
        return [self._futures[f] for f in self._not_done]

    def wait(self, timeout: float | None) -> list[ChunkEvent]:
        done, self._not_done = wait(
            self._not_done, timeout=timeout, return_when=FIRST_COMPLETED
        )
        events: list[ChunkEvent] = []
        for fut in done:
            start, part = self._futures[fut]
            exc = fut.exception()
            if exc is None:
                values = fut.result()
                if fut in self._traced:
                    values, raw_spans, worker_pid = values
                    recorder = spans_active()
                    if recorder is not None:
                        recorder.chunk_absorb(
                            start, raw_spans, track=f"pid:{worker_pid}"
                        )
                events.append((start, part, values))
            elif isinstance(exc, BrokenProcessPool):
                # The pool is dead; everything unfinished is lost too.
                events.append((start, part, None))
                self.broken = True
            else:
                # Application error: deterministic, never retried.
                raise exc
        return events

    def abandon(self) -> None:
        kill_pool(self.executor)

    def close(self) -> None:
        self.executor.shutdown(wait=True)
