"""Socket worker fleet: the distributed backend of the transport seam.

``repro worker serve --bind HOST:PORT`` starts a :class:`WorkerServer`
(stdlib :mod:`socketserver`, no new dependencies) that executes the
same picklable :data:`~repro.parallel.runner.SweepJob` chunks the
process pool runs.  :class:`RemoteRunner` drives a fleet of them
through :class:`RemoteTransport`, reusing the generic
:class:`~repro.parallel.runner.TransportRunner` scheduling loop — so
chunking, submission-order merge, the cumulative timeout budget, and
bounded chunk retries behave *identically* to the in-process pool, and
a distributed sweep's report is byte-identical to a serial one (pinned
in ``tests/test_remote.py`` and the ``distributed-smoke`` CI job).

Wire protocol (``repro.remote/1``)
----------------------------------

Every message is one *frame*: an 8-byte big-endian length prefix
followed by that many bytes of zlib-compressed pickle.  Messages are
tuples:

* ``("hello", info)`` → ``("hello", {"format", "pid"})`` — sent once
  per connection; ``info`` carries the protocol format, the parent's
  determinism env (``REPRO_FIBERS``, ``REPRO_MUTATIONS``, …) which the
  worker applies before keying or executing anything, and the shared
  cache location (or ``None``).
* ``("run", start, jobs)`` → ``("done", start, items)`` — one chunk.
  Each element of ``items`` describes one job, in order:
  ``("raw", value)`` for uncacheable jobs, ``("hit", outcome)`` for
  worker-side cache hits (**no payload crosses the wire**), and
  ``("miss"|"stale", outcome, key, payload)`` for executed jobs, whose
  payloads the parent stores (one ``put_many`` per chunk, keeping the
  one-writer-per-sweep property of ``CachedRunner``).
  A job that raises yields ``("error", start, exception)`` instead —
  an application error, re-raised verbatim at the parent.
* ``("ping",)`` → ``("pong", {"pid", "busy"})`` — liveness, answered
  even while a chunk is executing (used by the parent's heartbeat and
  by ``repro worker ping``).

Failure semantics
-----------------

A connection error or EOF marks that worker dead for the round: its
in-flight chunk is reported *lost* and flows into the runner's
existing retry machinery (the retry round reconnects to every address,
so a recovered worker rejoins automatically).  If no data arrives for
``heartbeat`` seconds the parent probes each silent worker with an
ephemeral ping connection; probe failure is a death.  When every
worker is dead the round is *broken* and all pending chunks are
retried — exactly the pool's ``BrokenProcessPool`` path.  The repo's
own fault-tolerance story, applied to its harness.

Security: frames are pickles — a worker executes what it is sent and a
parent unpickles what it receives.  Bind workers to loopback or a
trusted network only; there is no authentication layer.
"""

from __future__ import annotations

import math
import os
import pickle
import select
import socket
import socketserver
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..obs import registry as metrics
from ..obs.spans import (
    SpanRecorder,
    active as spans_active,
    outcome_label,
    recording,
)
from .runner import (
    DEFAULT_STREAM_WINDOW,
    SweepError,
    TransportRunner,
)
from .transport import Chunk, ChunkEvent, Transport, TransportRound

__all__ = [
    "REMOTE_FORMAT",
    "RemoteRunner",
    "RemoteTransport",
    "WorkerServer",
    "parse_worker_addrs",
    "ping",
    "serve",
]

#: Wire protocol identifier, sent in every hello and checked by both ends.
REMOTE_FORMAT = "repro.remote/1"

#: Determinism-relevant environment propagated parent → worker on hello.
#: Applied (set *and* unset) before any job key is computed or any job
#: runs, so a worker keys and executes exactly like its parent.
ENV_KEYS = ("REPRO_FIBERS", "REPRO_MUTATIONS", "REPRO_CACHE_BACKEND")

_LEN = struct.Struct(">Q")
#: Refuse absurd frames instead of allocating unbounded buffers.
_MAX_FRAME = 1 << 31


# -- framing -----------------------------------------------------------------


def _pack(obj: Any) -> tuple[bytes, int]:
    """Encode *obj* as a frame; returns ``(frame_bytes, raw_len)``."""
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    wire = zlib.compress(raw, 1)  # speed over ratio: sims dwarf zlib -1
    return _LEN.pack(len(wire)) + wire, len(raw)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Blocking read of exactly *n* bytes; raises ``ConnectionError`` on EOF."""
    buf = bytearray()
    while len(buf) < n:
        data = sock.recv(min(n - len(buf), 1 << 20))
        if not data:
            raise ConnectionError("connection closed mid-frame")
        buf += data
    return bytes(buf)


def _recv_frame(sock: socket.socket) -> tuple[Any, int, int]:
    """Blocking frame read; returns ``(obj, wire_len, raw_len)``."""
    (size,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if size > _MAX_FRAME:
        raise ConnectionError(f"oversized frame ({size} bytes)")
    raw = zlib.decompress(_recv_exact(sock, size))
    return pickle.loads(raw), size, len(raw)


class _FrameBuffer:
    """Incremental frame parser for the parent's select() loop."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self.wire_in = 0  # compressed bytes consumed (complete frames)
        self.raw_in = 0  # decompressed bytes produced

    def feed(self, data: bytes) -> None:
        self._buf += data

    def frames(self) -> Iterator[Any]:
        while True:
            if len(self._buf) < _LEN.size:
                return
            (size,) = _LEN.unpack(self._buf[: _LEN.size])
            if size > _MAX_FRAME:
                raise ConnectionError(f"oversized frame ({size} bytes)")
            if len(self._buf) < _LEN.size + size:
                return
            wire = bytes(self._buf[_LEN.size : _LEN.size + size])
            del self._buf[: _LEN.size + size]
            raw = zlib.decompress(wire)
            self.wire_in += _LEN.size + size
            self.raw_in += len(raw)
            yield pickle.loads(raw)


# -- addresses ---------------------------------------------------------------


def parse_worker_addrs(spec: str) -> tuple[tuple[str, int], ...]:
    """Parse ``"host:port,host:port,..."`` into address tuples.

    Raises :class:`ValueError` with a usable message on malformed input
    (the CLI uses this as an argparse ``type=`` so errors surface at
    parse time, not as a traceback from a socket call).
    """
    addrs: list[tuple[str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port_s = part.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"worker address {part!r} is not HOST:PORT "
                "(expected e.g. 127.0.0.1:7777)"
            )
        try:
            port = int(port_s)
        except ValueError:
            raise ValueError(
                f"worker address {part!r} has a non-numeric port"
            ) from None
        if not 1 <= port <= 65535:
            raise ValueError(
                f"worker address {part!r} has an out-of-range port"
            )
        addrs.append((host, port))
    if not addrs:
        raise ValueError("no worker addresses given")
    return tuple(addrs)


def _addr_str(addr: tuple[str, int]) -> str:
    return f"{addr[0]}:{addr[1]}"


# -- worker side -------------------------------------------------------------


def _apply_env(env: dict[str, str]) -> None:
    """Adopt the parent's determinism env: set sent keys, drop absent
    ones (so a previous client's settings never leak into this sweep)."""
    for key in ENV_KEYS:
        if key in env:
            os.environ[key] = env[key]
        else:
            os.environ.pop(key, None)


def _traced_job(trace: tuple | None, index: int, run: Any) -> Any:
    """Execute ``run()`` inside a ``job`` span when *trace* is set.

    *trace* is ``(recorder, root_span, base_index)``; cache hits never
    come through here (a hit executes nothing, so it gets no job span —
    documented canonicalization caveat for cached sweeps).
    """
    if trace is None:
        return run()
    recorder, root, base = trace
    with recorder.span(
        "job", "job", parent=root.id, attrs={"index": base + index}
    ) as span:
        value = run()
        span.attrs["outcome"] = outcome_label(value)
    return value


def _execute_chunk(
    jobs: Sequence[Any], cache: Any, trace: tuple | None = None
) -> list[tuple]:
    """Run one chunk worker-side, consulting the shared cache first.

    Mirrors ``CachedRunner``'s per-job logic (keys via ``job_key``, one
    batched ``get_many``, corrupt hit demoted to stale) so a remote
    cached sweep classifies jobs exactly like a local one.  Hits return
    outcome only — the stored payload never crosses the wire.
    """
    if cache is None:
        return [
            ("raw", _traced_job(trace, i, job))
            for i, job in enumerate(jobs)
        ]
    from ..cache.keys import job_key

    keys = [job_key(job) for job in jobs]
    cacheable = [i for i, key in enumerate(keys) if key is not None]
    fetched = dict(
        zip(cacheable, cache.get_many([keys[i] for i in cacheable]))
    )
    items: list[tuple] = []
    for i, job in enumerate(jobs):
        key = keys[i]
        if key is None:
            items.append(("raw", _traced_job(trace, i, job)))
            continue
        status, payload = fetched[i]
        if status == "hit":
            try:
                outcome = job.from_cached(payload)
            except Exception:  # noqa: BLE001 - treat as stale entry
                status = "stale"
        if status == "hit":
            items.append(("hit", outcome))
            continue
        if trace is None:
            outcome, payload = job.cache_payload()
        else:
            recorder, root, base = trace
            with recorder.span(
                "job", "job", parent=root.id, attrs={"index": base + i}
            ) as span:
                outcome, payload = job.cache_payload()
                span.attrs["outcome"] = outcome_label(outcome)
        items.append((status, outcome, key, payload))
    return items


def _execute_chunk_traced(
    jobs: Sequence[Any], cache: Any, base: int
) -> tuple[list[tuple], list[dict]]:
    """Span-recording :func:`_execute_chunk`: one ``job`` span per
    *executed* job under a ``chunk.exec`` root, with the recorder
    installed thread-locally so worker-side cache batches land in it
    too.  Returns ``(items, exported_spans)``."""
    recorder = SpanRecorder(kind="chunk")
    with recording(recorder):
        with recorder.span(
            "chunk.exec", "exec", attrs={"jobs": len(jobs)}
        ) as root:
            items = _execute_chunk(jobs, cache, trace=(recorder, root, base))
    return items, recorder.export_raw()


class _WorkerHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # noqa: C901 - one loop, small states
        sock: socket.socket = self.request
        server: WorkerServer = self.server  # type: ignore[assignment]
        cache = None
        try:
            while True:
                try:
                    msg, _wire, _raw = _recv_frame(sock)
                except ConnectionError:
                    return
                kind = msg[0]
                if kind == "hello":
                    info = msg[1]
                    if info.get("format") != REMOTE_FORMAT:
                        self._send(
                            sock,
                            ("reject", f"format mismatch: {info.get('format')!r} "
                                       f"!= {REMOTE_FORMAT!r}"),
                        )
                        return
                    with server.env_lock:
                        _apply_env(info.get("env") or {})
                    spec = info.get("cache")
                    if spec is not None:
                        from ..cache.store import RunCache

                        cache = RunCache(
                            spec["root"], backend=spec.get("backend")
                        )
                    self._send(
                        sock, ("hello", {"format": REMOTE_FORMAT, "pid": os.getpid()})
                    )
                elif kind == "ping":
                    self._send(
                        sock,
                        ("pong", {"pid": os.getpid(),
                                  "busy": server.exec_lock.locked()}),
                    )
                elif kind == "run":
                    start, jobs = msg[1], msg[2]
                    # Spans-off frames are 3-tuples, byte-identical to
                    # the pre-span wire format; a 4th element carries
                    # the span context and asks for spans back.
                    ctx = msg[3] if len(msg) > 3 else None
                    try:
                        # One chunk at a time per worker process: sims
                        # assume they own the process-wide fiber pool,
                        # and the pool's workers are serialized the
                        # same way (one chunk per pool process).
                        with server.exec_lock:
                            if ctx is None:
                                reply = ("done", start,
                                         _execute_chunk(jobs, cache))
                            else:
                                items, raw_spans = _execute_chunk_traced(
                                    jobs, cache, int(ctx.get("base", start))
                                )
                                reply = ("done", start, items, raw_spans)
                    except BaseException as exc:  # noqa: BLE001
                        # Application error: ship it back verbatim; the
                        # parent raises it and never retries the chunk.
                        self._send(sock, ("error", start, exc))
                        continue
                    self._send(sock, reply)
                else:
                    self._send(sock, ("reject", f"unknown message {kind!r}"))
                    return
        except OSError:
            # Parent hung up (possibly mid-send after abandoning the
            # round): drop the connection, keep serving others.
            return

    @staticmethod
    def _send(sock: socket.socket, obj: Any) -> None:
        frame, _raw = _pack(obj)
        sock.sendall(frame)


class WorkerServer(socketserver.ThreadingTCPServer):
    """A sweep worker serving ``repro.remote/1`` on a TCP socket.

    One connection handler per client thread, but chunk execution is
    serialized by :attr:`exec_lock` — a worker process runs one
    simulation at a time (pings still answer while a chunk runs, which
    is what makes the parent's heartbeat meaningful).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, bind: tuple[str, int]) -> None:
        super().__init__(bind, _WorkerHandler)
        self.exec_lock = threading.Lock()
        self.env_lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` requests."""
        host, port = self.server_address[:2]
        return str(host), int(port)


def serve(bind: tuple[str, int]) -> None:
    """Run a worker until interrupted (the ``repro worker serve`` body).

    Prints one readiness line to stderr (``[worker] listening on
    HOST:PORT pid=N``) so wrappers — tests, the ``distributed-smoke``
    CI job — can scrape the bound port and wait for availability.
    """
    import sys

    server = WorkerServer(bind)
    host, port = server.address
    # Marker for jobs that need to know they run under `worker serve`
    # (e.g. the dead-worker recovery test's poison job).
    os.environ["REPRO_WORKER_SERVE"] = f"{host}:{port}"
    print(
        f"[worker] {REMOTE_FORMAT} listening on {host}:{port} pid={os.getpid()}",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def ping(addr: tuple[str, int], timeout: float = 2.0) -> dict[str, Any]:
    """One liveness round-trip; returns the pong info or raises ``OSError``."""
    with socket.create_connection(addr, timeout=timeout) as sock:
        sock.settimeout(timeout)
        frame, _raw = _pack(("ping",))
        sock.sendall(frame)
        reply, _wire, _raw_in = _recv_frame(sock)
    if reply[0] != "pong":
        raise OSError(f"unexpected reply from {_addr_str(addr)}: {reply[0]!r}")
    return reply[1]


# -- parent side -------------------------------------------------------------


class _WorkerConn:
    """One round's connection to one worker."""

    def __init__(self, addr: tuple[str, int], sock: socket.socket, pid: int) -> None:
        self.addr = addr
        self.sock = sock
        self.pid = pid
        self.buffer = _FrameBuffer()
        self.busy: Chunk | None = None
        self.sent_at = 0.0
        self.last_seen = time.monotonic()

    def send(self, obj: Any) -> tuple[int, int]:
        frame, raw = _pack(obj)
        self.sock.sendall(frame)
        return len(frame), raw


def _new_stats(addr: tuple[str, int]) -> dict[str, Any]:
    return {
        "worker": _addr_str(addr),
        "pid": None,
        "chunks": 0,
        "jobs": 0,
        "rtt_s": 0.0,
        "bytes_out": 0,
        "bytes_in": 0,
        "raw_out": 0,
        "raw_in": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "cache_stale": 0,
        "disconnects": 0,
    }


class RemoteTransport(Transport):
    """Drive a fleet of :class:`WorkerServer` addresses.

    Persistent across scheduling rounds: per-worker statistics (chunks,
    rtt, bytes shipped, compression, worker-side cache hits) accumulate
    here and feed the telemetry stream.  Each round opens fresh
    connections — a worker that died simply fails to join the retry
    round, and one that recovered rejoins automatically.
    """

    def __init__(
        self,
        addresses: Sequence[tuple[str, int]],
        *,
        cache: Any = None,
        connect_timeout: float = 5.0,
        heartbeat: float = 2.0,
    ) -> None:
        if not addresses:
            raise ValueError("at least one worker address is required")
        self.addresses = tuple(addresses)
        self.cache = cache
        self.connect_timeout = connect_timeout
        self.heartbeat = heartbeat
        self.stats: dict[str, dict[str, Any]] = {
            _addr_str(a): _new_stats(a) for a in self.addresses
        }

    def parallelism(self) -> int:
        return len(self.addresses)

    def _hello_info(self) -> dict[str, Any]:
        env = {k: os.environ[k] for k in ENV_KEYS if k in os.environ}
        spec = None
        if self.cache is not None:
            spec = {"root": str(self.cache.root), "backend": self.cache.backend}
        return {"format": REMOTE_FORMAT, "env": env, "cache": spec}

    def open_round(self) -> "RemoteRound":
        return RemoteRound(self)

    def worker_stats(self) -> list[dict[str, Any]]:
        """Per-worker telemetry rows (with derived compression ratio)."""
        rows = []
        for addr in self.addresses:
            s = dict(self.stats[_addr_str(addr)])
            wire = s["bytes_out"] + s["bytes_in"]
            raw = s["raw_out"] + s["raw_in"]
            s["compression"] = round(raw / wire, 3) if wire else None
            rows.append(s)
        return rows


class RemoteRound(TransportRound):
    def __init__(self, transport: RemoteTransport) -> None:
        self.transport = transport
        self.broken = False
        self.conns: list[_WorkerConn] = []
        self.queue: list[Chunk] = []
        hello = transport._hello_info()
        for addr in transport.addresses:
            stats = transport.stats[_addr_str(addr)]
            try:
                sock = socket.create_connection(
                    addr, timeout=transport.connect_timeout
                )
                sock.settimeout(transport.connect_timeout)
                frame, raw = _pack(("hello", hello))
                sock.sendall(frame)
                reply, wire_in, raw_in = _recv_frame(sock)
            except OSError:
                stats["disconnects"] += 1
                continue
            if reply[0] != "hello":
                sock.close()
                raise SweepError(
                    f"worker {_addr_str(addr)} rejected the handshake: {reply!r}"
                )
            sock.settimeout(None)
            stats["pid"] = reply[1].get("pid")
            stats["bytes_out"] += len(frame)
            stats["raw_out"] += raw
            stats["bytes_in"] += wire_in
            stats["raw_in"] += raw_in
            self.conns.append(_WorkerConn(addr, sock, reply[1].get("pid")))
        if not self.conns:
            raise SweepError(
                "no reachable workers among "
                + ", ".join(_addr_str(a) for a in transport.addresses)
            )

    # -- submission --------------------------------------------------------

    def submit(self, start: int, jobs: list) -> None:
        self.queue.append((start, jobs))
        self._pump()

    def _pump(self) -> None:
        """Ship queued chunks to idle workers."""
        for conn in list(self.conns):
            if not self.queue:
                return
            if conn.busy is not None:
                continue
            start, part = self.queue[0]
            stats = self.transport.stats[_addr_str(conn.addr)]
            recorder = spans_active()
            if recorder is None:
                frame_msg: tuple = ("run", start, part)
            else:
                frame_msg = (
                    "run", start, part,
                    {"base": start + recorder.index_offset},
                )
            try:
                sent, raw = conn.send(frame_msg)
            except OSError:
                self._drop(conn)
                continue
            self.queue.pop(0)
            conn.busy = (start, part)
            conn.sent_at = time.monotonic()
            stats["bytes_out"] += sent
            stats["raw_out"] += raw
            metrics.REMOTE_FRAMES.inc(direction="out")
            metrics.REMOTE_BYTES.inc(sent, direction="out")
            if recorder is not None:
                recorder.event(
                    "frame.send", "net",
                    attrs={"kind": "run", "bytes": sent,
                           "worker": _addr_str(conn.addr)},
                )

    def pending(self) -> list[Chunk]:
        return list(self.queue) + [
            c.busy for c in self.conns if c.busy is not None
        ]

    # -- completion --------------------------------------------------------

    def wait(self, timeout: float | None) -> list[ChunkEvent]:
        self._pump()
        events: list[ChunkEvent] = []
        deadline = None if timeout is None else time.monotonic() + timeout
        while not events:
            busy = [c for c in self.conns if c.busy is not None]
            if not busy:
                break
            wait_s = self.transport.heartbeat
            if deadline is not None:
                wait_s = min(wait_s, max(0.0, deadline - time.monotonic()))
            readable, _w, _x = select.select([c.sock for c in busy], [], [], wait_s)
            if readable:
                by_sock = {c.sock: c for c in busy}
                for sock in readable:
                    events.extend(self._drain(by_sock[sock]))
                self._pump()  # freed workers pick up queued chunks
            else:
                now = time.monotonic()
                for conn in busy:
                    if (
                        now - conn.last_seen > self.transport.heartbeat
                        and not self._probe(conn)
                    ):
                        event = self._drop(conn)
                        if event is not None:
                            events.append(event)
                if deadline is not None and time.monotonic() >= deadline:
                    break
        return events

    def _drain(self, conn: _WorkerConn) -> list[ChunkEvent]:
        try:
            data = conn.sock.recv(1 << 20)
        except OSError:
            data = b""
        if not data:
            event = self._drop(conn)
            return [event] if event is not None else []
        conn.last_seen = time.monotonic()
        conn.buffer.feed(data)
        stats = self.transport.stats[_addr_str(conn.addr)]
        events: list[ChunkEvent] = []
        wire_before, raw_before = conn.buffer.wire_in, conn.buffer.raw_in
        try:
            for msg in conn.buffer.frames():
                events.extend(self._on_message(conn, msg))
        finally:
            wire_delta = conn.buffer.wire_in - wire_before
            stats["bytes_in"] += wire_delta
            stats["raw_in"] += conn.buffer.raw_in - raw_before
            if wire_delta:
                metrics.REMOTE_BYTES.inc(wire_delta, direction="in")
        return events

    def _on_message(self, conn: _WorkerConn, msg: tuple) -> list[ChunkEvent]:
        kind = msg[0]
        stats = self.transport.stats[_addr_str(conn.addr)]
        recorder = spans_active()
        metrics.REMOTE_FRAMES.inc(direction="in")
        if recorder is not None:
            recorder.event(
                "frame.recv", "net",
                attrs={"kind": str(kind), "worker": _addr_str(conn.addr)},
            )
        if kind == "done":
            start, items = msg[1], msg[2]
            if conn.busy is None or conn.busy[0] != start:
                return []  # stray reply (e.g. after a requeue); ignore
            start, part = conn.busy
            conn.busy = None
            stats["chunks"] += 1
            stats["jobs"] += len(part)
            stats["rtt_s"] += time.monotonic() - conn.sent_at
            if len(msg) > 3 and recorder is not None:
                recorder.chunk_absorb(
                    start, msg[3], track=f"worker:{_addr_str(conn.addr)}"
                )
            values = self._merge_items(part, items, stats)
            return [(start, part, values)]
        if kind == "error":
            _kind, start, exc = msg
            conn.busy = None
            # Application error: deterministic, never retried — exactly
            # the pool's behaviour.  The runner abandons the round.
            raise exc
        if kind == "reject":
            raise SweepError(
                f"worker {_addr_str(conn.addr)} rejected the session: {msg[1]}"
            )
        return []

    def _merge_items(
        self, part: list, items: list[tuple], stats: dict[str, Any]
    ) -> list[Any]:
        """Unpack one chunk's item list into in-order values; store the
        cache-miss payloads (one batched ``put_many`` per chunk) and
        keep the parent-side ``perf.CACHE`` counters exact."""
        from .. import perf

        cache = self.transport.cache
        values: list[Any] = []
        stores: list[tuple[str, dict[str, Any], Any]] = []
        for i, item in enumerate(items):
            tag = item[0]
            if tag == "raw":
                values.append(item[1])
            elif tag == "hit":
                perf.CACHE.hits += 1
                stats["cache_hits"] += 1
                values.append(item[1])
            else:  # "miss" | "stale": executed worker-side
                _tag, outcome, key, payload = item
                if tag == "stale":
                    perf.CACHE.stale += 1
                    stats["cache_stale"] += 1
                else:
                    perf.CACHE.misses += 1
                    stats["cache_misses"] += 1
                values.append(outcome)
                stores.append((key, payload, part[i]))
        if stores and cache is not None:
            cache.put_many(stores)
            perf.CACHE.stores += len(stores)
        return values

    # -- liveness ----------------------------------------------------------

    def _alive(self, addr: tuple[str, int]) -> bool:
        try:
            ping(addr, timeout=min(self.transport.heartbeat, 2.0))
            return True
        except OSError:
            return False

    def _probe(self, conn: _WorkerConn) -> bool:
        """Heartbeat a silent worker, with span + counter accounting."""
        recorder = spans_active()
        if recorder is None:
            alive = self._alive(conn.addr)
        else:
            with recorder.span(
                "heartbeat.probe", "heartbeat",
                attrs={"worker": _addr_str(conn.addr)},
            ) as span:
                alive = self._alive(conn.addr)
                span.attrs["alive"] = alive
        metrics.REMOTE_HEARTBEATS.inc(result="alive" if alive else "dead")
        return alive

    def _drop(self, conn: _WorkerConn) -> ChunkEvent | None:
        """Declare *conn*'s worker dead; surface its in-flight chunk as
        lost (the runner's retry machinery re-dispatches it)."""
        self.transport.stats[_addr_str(conn.addr)]["disconnects"] += 1
        metrics.REMOTE_DISCONNECTS.inc()
        try:
            conn.sock.close()
        except OSError:
            pass
        if conn in self.conns:
            self.conns.remove(conn)
        chunk, conn.busy = conn.busy, None
        if not self.conns and (self.queue or chunk is not None):
            self.broken = True
        if chunk is None:
            return None
        start, part = chunk
        return (start, part, None)

    # -- teardown ----------------------------------------------------------

    def abandon(self) -> None:
        for conn in self.conns:
            try:
                conn.sock.close()
            except OSError:
                pass
        self.conns = []
        self.queue = []

    def close(self) -> None:
        self.abandon()


@dataclass
class RemoteRunner(TransportRunner):
    """Fan jobs out across a socket worker fleet.

    Parameters
    ----------
    addresses:
        Worker addresses — a ``"host:port,host:port"`` string or a
        sequence of ``(host, port)`` tuples.  One chunk executes per
        worker at a time (workers serialize execution internally).
    chunk_size:
        Jobs per frame.  ``None`` auto-chunks to roughly four chunks
        per worker, capped so one frame never carries more than a
        stream window's share of jobs (frames stay bounded even for
        huge materialized runs).
    timeout / retries:
        Exactly the pool's contract (see
        :class:`~repro.parallel.runner.ProcessPoolRunner`): cumulative
        per-round budget, chunk-level retries, application errors never
        retried.  A chunk lost to a dead worker consumes one retry.
    connect_timeout / heartbeat:
        Socket connect budget, and how long a worker may stay silent
        before the parent probes it with a ping.
    """

    addresses: Sequence[tuple[str, int]] | str = ()
    chunk_size: int | None = None
    timeout: float | None = None
    retries: int = 1
    connect_timeout: float = 5.0
    heartbeat: float = 2.0
    cache: Any = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.addresses, str):
            self.addresses = parse_worker_addrs(self.addresses)
        self.addresses = tuple(self.addresses)
        if not self.addresses:
            raise ValueError("at least one worker address is required")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        self.job_retries = []
        self._remote = RemoteTransport(
            self.addresses,
            cache=self.cache,
            connect_timeout=self.connect_timeout,
            heartbeat=self.heartbeat,
        )

    def _transport(self) -> RemoteTransport:
        return self._remote

    def _auto_chunk(self, n_jobs: int, width: int) -> int:
        # Four chunks per worker like the pool, but capped at a stream
        # window's share so one frame never ships an unbounded slice of
        # a huge materialized run.
        cap = max(1, math.ceil(DEFAULT_STREAM_WINDOW / (width * 4)))
        return max(1, min(math.ceil(n_jobs / (width * 4)), cap))

    def attach_cache(self, cache: Any) -> None:
        """Enable worker-side cache lookups against *cache* (a
        :class:`~repro.cache.RunCache` or anything ``RunCache.at``
        accepts).  Unlike wrapping in ``CachedRunner``, lookups happen
        *in the workers*: warm entries never cross the wire."""
        from ..cache.store import RunCache

        self.cache = RunCache.at(cache)
        self._remote.cache = self.cache

    def worker_stats(self) -> list[dict[str, Any]]:
        """Per-worker transport telemetry accumulated across rounds."""
        return self._remote.worker_stats()

    def _stream_window(self) -> int:
        workers = len(self.addresses)
        if self.chunk_size is not None:
            return max(DEFAULT_STREAM_WINDOW, self.chunk_size * workers * 4)
        return max(DEFAULT_STREAM_WINDOW, workers * 128)
