"""The sweep job model: picklable descriptions of one simulation each.

Fan-out across a process pool forces a real serialization layer: a job
cannot be a bare closure, because closures do not pickle.  The contract
here is:

* a **scenario factory** is a picklable zero-argument callable returning
  ``(Simulation, main)`` — a module-level function, a
  ``functools.partial`` over one, or a dataclass instance with
  ``__call__`` (see :mod:`repro.parallel.scenarios`).  The factory itself
  crosses the process boundary; whatever it *returns* (closures included)
  never does — it is built and consumed inside the worker.
* **invariants** may be given either as a sequence of picklable callables
  or as a single picklable *invariant factory* — a zero-argument callable
  returning the sequence, resolved worker-side.  The factory form lets
  closure-built batteries like
  :func:`repro.analysis.standard_ring_invariants` ride along (wrap them
  in :class:`repro.parallel.scenarios.StandardRingInvariants`).
* the job's **result** must pickle too; jobs therefore reduce a
  :class:`~repro.simmpi.runtime.SimulationResult` to a compact record
  inside the worker instead of shipping whole traces home (pass a
  ``reduce`` function to :class:`SimJob`, or use the campaign/explorer
  jobs which return :class:`~repro.faults.campaign.CampaignRun` /
  :class:`~repro.faults.explorer.ScenarioOutcome` records).

**Cache contract** (opt-in, consumed by :mod:`repro.cache`): a job whose
classified outcome can be reused across sweeps additionally provides

* ``cache_payload() -> (outcome, payload)`` — execute the job once and
  return both its normal result and a JSON-able dict capturing the
  classified outcome (violations, hang/abort flags, result digest, final
  time, perf counters minus ``wall_s``).  Called *where the trace
  exists* (worker-side under a pool), so digests are cheap;
* ``from_cached(payload) -> outcome`` — reconstruct the normal result
  from a payload that has been through a JSON round-trip.  Must be
  *exact*: a warm sweep's report is byte-identical to a cold one;
* optionally ``cacheable`` (property) — ``False`` vetoes caching for a
  particular instance (e.g. ``keep_results=True``, where the caller
  needs the full trace-bearing result that the cache never stores);
* optionally ``_cache_key_exclude`` (class attr) — field names left out
  of the cache key (display-only fields like a submission index).

The key itself is derived in :mod:`repro.cache.keys` from the job's
dataclass fields plus version and mutation salts; jobs without the
contract (e.g. :class:`SimJob`, whose ``reduce`` is an arbitrary
callable) simply always execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence, Union

from ..simmpi.runtime import Simulation, SimulationResult

#: Builds a fresh, un-run Simulation plus its per-rank main(s).
#: (Must be picklable to cross a process boundary.)
ScenarioFactory = Callable[[], "tuple[Simulation, Any]"]

#: An invariant inspects a result and returns a violation message or None.
Invariant = Callable[[SimulationResult], "str | None"]

#: Invariants, given directly or via a worker-side factory.
InvariantSpec = Union[Sequence[Invariant], Callable[[], Sequence[Invariant]]]


def resolve_invariants(spec: Any) -> tuple[Invariant, ...]:
    """Materialize an :data:`InvariantSpec` into a tuple of invariants.

    A sequence passes through; a callable (never itself a sequence) is
    invoked — this is what lets a picklable factory stand in for a list
    of closures on the far side of a process boundary.
    """
    if spec is None:
        return ()
    if callable(spec):
        return tuple(spec())
    return tuple(spec)


def check_invariants(
    spec: Any, result: SimulationResult
) -> list[str]:
    """Apply a resolved invariant battery, collecting violation messages."""
    return [
        v for inv in resolve_invariants(spec) if (v := inv(result)) is not None
    ]


@dataclass
class SimJob:
    """One independent simulation: build, inject, run, reduce.

    ``injectors`` are attached to the fresh simulation before the run
    (the standard :mod:`repro.faults.injector` classes are all picklable
    dataclasses).  ``reduce``, when given, is applied to the
    :class:`~repro.simmpi.runtime.SimulationResult` *inside the worker*
    so only its (small, picklable) return value crosses back.
    """

    factory: ScenarioFactory
    injectors: tuple = ()
    reduce: Callable[[SimulationResult], Any] | None = None
    on_deadlock: str = "return"

    def __call__(self) -> Any:
        sim, main = self.factory()
        for inj in self.injectors:
            sim.add_injector(inj)
        result = sim.run(main, on_deadlock=self.on_deadlock)
        return self.reduce(result) if self.reduce is not None else result
