"""``repro.parallel`` — the process-pool sweep engine.

Fault-injection campaigns, the exhaustive window explorer, and the
sweep-style benchmarks all execute many fully independent deterministic
simulations; this package runs such batches across a process pool while
guaranteeing that the merged results are **bit-identical to serial
order** (jobs are deterministic; results are placed by submission index,
never by completion order).

Layers:

* :mod:`~repro.parallel.runner` — :class:`SweepRunner` interface,
  :class:`SerialRunner`, :class:`ProcessPoolRunner` (chunked scheduling,
  per-job timeout, bounded retries for wedged workers),
  :func:`make_runner`.
* :mod:`~repro.parallel.transport` — the transport seam: the generic
  scheduling loop delegates chunk execution to a pluggable
  :class:`Transport` (local process pool, socket fleet).
* :mod:`~repro.parallel.remote` — the distributed backend:
  :class:`WorkerServer` (``repro worker serve``) and
  :class:`RemoteRunner` over length-prefixed compressed-pickle frames,
  with worker-side cache lookups and heartbeat liveness.
* :mod:`~repro.parallel.jobs` — the picklable job model
  (:class:`SimJob`, invariant specs) that lets scenario descriptions
  cross a process boundary.
* :mod:`~repro.parallel.scenarios` — picklable scenario/invariant specs
  for the bundled workloads (:class:`RingScenario`,
  :class:`StandardRingInvariants`).

See ``docs/parallel.md`` for the determinism and timeout/retry contract.
"""

from .jobs import (
    Invariant,
    ScenarioFactory,
    SimJob,
    check_invariants,
    resolve_invariants,
)
from .remote import (
    RemoteRunner,
    RemoteTransport,
    WorkerServer,
    parse_worker_addrs,
)
from .runner import (
    ProcessPoolRunner,
    SerialRunner,
    SweepError,
    SweepJob,
    SweepRunner,
    TransportRunner,
    make_runner,
)
from .transport import LocalPoolTransport, Transport
from .scenarios import (
    AppScenario,
    GenericInvariants,
    RingScenario,
    StandardRingInvariants,
)

__all__ = [
    "AppScenario",
    "GenericInvariants",
    "Invariant",
    "LocalPoolTransport",
    "ProcessPoolRunner",
    "RemoteRunner",
    "RemoteTransport",
    "RingScenario",
    "ScenarioFactory",
    "SerialRunner",
    "SimJob",
    "StandardRingInvariants",
    "SweepError",
    "SweepJob",
    "SweepRunner",
    "Transport",
    "TransportRunner",
    "WorkerServer",
    "check_invariants",
    "make_runner",
    "parse_worker_addrs",
    "resolve_invariants",
]
