"""Fault-tolerant send to the right neighbor (paper Fig. 5).

``ft_send_right`` tries the current right neighbor; on a
``MPI_ERR_RANK_FAIL_STOP`` it advances ``P_R`` to the next alive rank and
retries, until the send succeeds or the process finds itself alone (in
which case neighbor selection aborts the job, per the paper).
"""

from __future__ import annotations

from ..simmpi.errors import RankFailStopError
from .messages import TAG_NORMAL, TAG_RESEND, RingMsg
from .neighbors import to_right_of
from .state import RingState


def ft_send_right(st: RingState, buffer: RingMsg, *, resend: bool = False) -> None:
    """Send *buffer* to the nearest alive right neighbor (Fig. 5).

    Retargets ``st.right`` past failed ranks as sends bounce.  Also
    records the buffer as ``st.last_sent`` so a later failure of the right
    neighbor can be repaired by resending it (Fig. 7).

    ``resend=True`` marks a repair retransmission: it bumps the resend
    counter and — in the split-tag variant — goes out on ``TAG_RESEND``.
    """
    comm = st.comm
    tag = TAG_RESEND if (resend and st.resend_tag_split) else TAG_NORMAL
    while True:
        try:
            comm.send(buffer.copy(), st.right, tag)
            break
        except RankFailStopError:
            st.right = to_right_of(comm, st.right)
            st.stats.right_retargets += 1
    st.last_sent = buffer.copy()
    if resend:
        st.stats.resends += 1
    else:
        st.stats.forwards += 1
