"""Fault-aware neighbor selection and leader election (paper Figs. 4, 12).

``to_left_of`` / ``to_right_of`` walk the ring skipping every rank whose
state is not ``MPI_RANK_OK`` — consulting the *local* (communication-free)
``MPI_Comm_validate_rank``.  If the walk comes all the way back to the
caller, the process is alone and the job aborts, exactly as the paper's
pseudo code calls ``MPI_Abort``.

``get_current_root`` is the paper's Fig. 12 leader election: the lowest
rank among all ranks the caller believes alive.  Like the paper's version
it is purely local; different processes may transiently disagree while
detector notifications are in flight, which is precisely why §III-D pairs
it with the consensus-based termination of Fig. 13.
"""

from __future__ import annotations

from ..ft.rank_info import RankState
from ..ft.validate import rank_state
from ..simmpi.communicator import Comm


def to_left_of(comm: Comm, n: int) -> int:
    """The nearest alive rank to the *left* of comm rank *n* (Fig. 4).

    Aborts the job if the caller is the only alive rank.
    """
    me = comm.rank
    size = comm.size
    while True:
        n = size - 1 if n == 0 else n - 1
        if rank_state(comm, n) is RankState.OK:
            break
    if n == me:
        comm.proc.abort(-1)
    return n


def to_right_of(comm: Comm, n: int) -> int:
    """The nearest alive rank to the *right* of comm rank *n* (Fig. 4).

    Aborts the job if the caller is the only alive rank.
    """
    me = comm.rank
    size = comm.size
    while True:
        n = (n + 1) % size
        if rank_state(comm, n) is RankState.OK:
            break
    if n == me:
        comm.proc.abort(-1)
    return n


def get_current_root(comm: Comm) -> int:
    """Leader election (Fig. 12): lowest comm rank believed alive.

    Aborts if no rank is alive (cannot happen for the caller itself, which
    is alive by definition — kept for fidelity with the paper's code).
    """
    for n in range(comm.size):
        if rank_state(comm, n) is RankState.OK:
            return n
    comm.proc.abort(-1)
    raise AssertionError("unreachable")  # pragma: no cover
