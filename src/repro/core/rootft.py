"""Root-failure-tolerant ring (paper §III-D).

The paper's final design question: *what if the root fails?*  Its answer,
implemented here:

1. Every process re-elects the root locally via the Fig. 12 leader
   election (lowest alive rank).
2. The process that finds itself the new root must **regain control of
   the iteration**: "the ``P_L`` peer will resend to the new root the last
   buffer it passed to the old root.  From this information and local
   knowledge of the last buffer that it passed to ``P_R``, the new root
   can determine the last known iteration of the ring" (§III-D).
3. Termination uses the consensus-based Fig. 13 scheme
   (``MPI_Icomm_validate_all``), which — unlike the Fig. 11 root
   broadcast — survives root death.

Recovery logic.  Ring traffic flows strictly rightward, and the new root
is by construction the old root's ring successor (the lowest alive rank).
If the new root has already forwarded ``c`` iterations (``cur_marker ==
c``), the most-progressed surviving copy of the ring buffer carries marker
``c - 1`` and the resend chain is guaranteed to deliver it to the new
root: every alive process watches its right neighbor and retransmits its
last-sent buffer past failures.  The new root therefore waits for a buffer
with marker ``>= c - 1``, records it as that iteration's completion, and
resumes leading from the following marker.  Two corner cases:

* ``c == 0`` — nothing was ever forwarded; the new root simply starts
  leading iteration 0 (stale in-flight duplicates are marker-deduplicated
  at every receiver).
* The awaited resend arrived *before* the role change and was discarded
  as a duplicate (asymmetric detection latencies).  The receive machinery
  keeps the freshest discarded buffer (``st.last_discarded``) exactly for
  this: recovery consults it before blocking.
"""

from __future__ import annotations

from typing import Any

from ..simmpi.errors import ErrorHandler
from ..simmpi.process import SimProcess
from .messages import RingMsg
from .neighbors import get_current_root, to_left_of, to_right_of
from .recv import BecameRoot, ft_recv_left
from .ring import RingConfig, ring_report
from .send import ft_send_right
from .state import RingState
from .termination import ft_termination_validate_all


def _recover_control(st: RingState, mpi: SimProcess) -> None:
    """Regain control of the iteration after becoming the root (§III-D).

    On return, ``st.cur_marker`` is the next iteration this process will
    lead, and the recovered in-flight completion (if any) is recorded.
    """
    mpi.probe_point("became_root")
    if st.cur_marker == 0:
        return  # nothing ever circulated; lead iteration 0 afresh
    want = st.cur_marker - 1
    if st.last_discarded is not None and st.last_discarded.marker >= want:
        msg = st.last_discarded
    else:
        msg = ft_recv_left(st, accept_from=want)
    st.stats.root_completions.append((msg.marker, msg.value))
    st.cur_marker = msg.marker + 1
    mpi.probe_point("root_recovered")


def rootft_ring_main(mpi: SimProcess, cfg: RingConfig) -> dict[str, Any]:
    """Ring main loop tolerating failures of any rank, root included.

    The per-iteration roles are re-evaluated against the local leader
    election; a process promoted to root mid-wait (signalled by
    :class:`~repro.core.recv.BecameRoot`) runs control recovery before
    leading its first iteration.
    """
    comm = mpi.comm_world
    comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
    me = comm.rank
    st = RingState(
        comm,
        left=to_left_of(comm, me),
        right=to_right_of(comm, me),
        root=get_current_root(comm),
        dedup=True,
    )
    was_root = st.is_root()

    while st.cur_marker < cfg.max_iter:
        if cfg.work_per_iter:
            mpi.compute(cfg.work_per_iter)
        st.root = get_current_root(comm)
        if st.is_root() and not was_root:
            _recover_control(st, mpi)
            was_root = True
            continue  # re-check the loop condition after recovery
        if st.is_root():
            i = st.cur_marker
            buffer = RingMsg(value=1, marker=i)
            ft_send_right(st, buffer)
            mpi.probe_point("root_post_send")
            msg = ft_recv_left(st)
            mpi.probe_point("root_post_recv")
            st.stats.root_completions.append((msg.marker, msg.value))
            st.cur_marker = msg.marker + 1
            st.stats.iterations_completed += 1
        else:
            try:
                msg = ft_recv_left(st, root_aware=True)
            except BecameRoot:
                st.root = get_current_root(comm)
                _recover_control(st, mpi)
                was_root = True
                continue
            mpi.probe_point("post_recv")
            msg.value += 1
            ft_send_right(st, msg)
            mpi.probe_point("post_send")
            st.cur_marker += 1
            st.stats.iterations_completed += 1

    mpi.probe_point("pre_termination")
    ft_termination_validate_all(st, mode=cfg.validate_mode)
    st.root = get_current_root(comm)
    return ring_report(st, "root" if st.is_root() else "nonroot")


def make_rootft_main(cfg: RingConfig):
    """Bind a :class:`RingConfig` into a root-failure-tolerant main."""
    return lambda mpi: rootft_ring_main(mpi, cfg)
