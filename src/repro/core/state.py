"""Per-process ring state and statistics.

Collects the globals of the paper's pseudo code (``P_L``, ``P_R``,
``P_Root``, ``cur_marker``, the last buffer sent right) plus the counters
the benchmark harness reports (resends, duplicates discarded, neighbor
retargets, iterations completed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simmpi.communicator import Comm
from ..simmpi.request import Request
from .messages import RingMsg


@dataclass
class RingStats:
    """Counters accumulated by one rank over a ring run."""

    iterations_completed: int = 0
    forwards: int = 0
    resends: int = 0
    duplicates_discarded: int = 0
    right_retargets: int = 0
    left_retargets: int = 0
    #: Values the root observed completing each iteration, in order;
    #: non-root ranks leave this empty.  A marker appearing twice here is
    #: the paper's Fig. 8 duplicate-completion pathology.
    root_completions: list[tuple[int, int]] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for reports and assertions."""
        return {
            "iterations_completed": self.iterations_completed,
            "forwards": self.forwards,
            "resends": self.resends,
            "duplicates_discarded": self.duplicates_discarded,
            "right_retargets": self.right_retargets,
            "left_retargets": self.left_retargets,
            "root_completions": list(self.root_completions),
        }


@dataclass
class RingState:
    """The paper's per-process globals, bundled.

    ``last_sent`` holds a copy of the last buffer passed to the right
    neighbor — the message that must be *resent* when the right neighbor
    dies holding the ring's control (paper Fig. 7).
    """

    comm: Comm
    left: int
    right: int
    root: int
    cur_marker: int = 0
    last_sent: RingMsg | None = None
    #: Use iteration markers to drop duplicates (paper §III-B).  Disabled
    #: for the Fig. 8 demonstration variant.
    dedup: bool = True
    #: Send resends on a separate tag (the paper's alternative dedup
    #: channel); normal traffic stays on TAG_NORMAL.
    resend_tag_split: bool = False
    #: The persistent watchdog receive posted to the right neighbor.
    watchdog: Request | None = None
    #: Freshest duplicate discarded by the marker check — consulted by the
    #: §III-D root-recovery path (see :mod:`repro.core.rootft`).
    last_discarded: RingMsg | None = None
    stats: RingStats = field(default_factory=RingStats)

    @property
    def me(self) -> int:
        return self.comm.rank

    def is_root(self) -> bool:
        return self.me == self.root
