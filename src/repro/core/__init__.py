"""``repro.core`` — the paper's fault-tolerant ring, every design stage.

Public surface:

* :func:`make_ring_main` / :class:`RingConfig` / :class:`RingVariant` /
  :class:`Termination` — build a per-rank main for a
  :class:`~repro.simmpi.runtime.Simulation` (paper Figs. 2 and 3).
* :func:`make_rootft_main` — the §III-D root-failure-tolerant driver.
* The building blocks, for composing your own protocols:
  :func:`to_left_of` / :func:`to_right_of` / :func:`get_current_root`
  (Figs. 4, 12), :func:`ft_send_right` (Fig. 5), :func:`ft_recv_left` /
  :func:`naive_recv_left` (Figs. 6–10), and the two termination schemes
  (Figs. 11, 13).
"""

from .messages import (
    IDX_NORMAL,
    IDX_WATCHDOG,
    TAG_DONE,
    TAG_NORMAL,
    TAG_RESEND,
    RingMsg,
)
from .neighbors import get_current_root, to_left_of, to_right_of
from .recv import BecameRoot, ensure_watchdog, ft_recv_left, naive_recv_left
from .ring import (
    RingConfig,
    RingVariant,
    Termination,
    baseline_ring_main,
    ft_ring_main,
    make_ring_main,
    ring_report,
)
from .rootft import make_rootft_main, rootft_ring_main
from .send import ft_send_right
from .state import RingState, RingStats
from .termination import (
    ft_termination_ibarrier,
    ft_termination_root_bcast,
    ft_termination_validate_all,
)

__all__ = [
    "BecameRoot",
    "IDX_NORMAL",
    "IDX_WATCHDOG",
    "RingConfig",
    "RingMsg",
    "RingState",
    "RingStats",
    "RingVariant",
    "TAG_DONE",
    "TAG_NORMAL",
    "TAG_RESEND",
    "Termination",
    "baseline_ring_main",
    "ensure_watchdog",
    "ft_recv_left",
    "ft_ring_main",
    "ft_send_right",
    "ft_termination_ibarrier",
    "ft_termination_root_bcast",
    "ft_termination_validate_all",
    "get_current_root",
    "make_ring_main",
    "make_rootft_main",
    "naive_recv_left",
    "ring_report",
    "rootft_ring_main",
    "to_left_of",
    "to_right_of",
]
