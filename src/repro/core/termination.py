"""Termination detection for the fault-tolerant ring (paper §III-C/D).

Once a process finishes propagating its last ring iteration it cannot
simply call ``MPI_Finalize``: it may still owe a *resend* to a right
neighbor whose predecessor died (paper Fig. 7).  Something must tell every
process "the ring is globally done; stop watching ``P_R``".

Two schemes, as in the paper:

* :func:`ft_termination_root_bcast` (Fig. 11) — the root linearly sends a
  ``T_D`` message to every rank, ignoring failures.  Non-roots wait on the
  termination receive *and* the resend watchdog.  If the root itself dies
  the survivors abort — root failure is outside this scheme's contract.
* :func:`ft_termination_validate_all` (Fig. 13) — replace the fragile
  reliable-broadcast problem with the fault-tolerant consensus already
  provided by ``MPI_Icomm_validate_all``.  Every process (root included)
  enters the non-blocking validate and services resends while it waits.
  This variant survives root failure, enabling §III-D.
"""

from __future__ import annotations

from ..ft.validate_all import icomm_validate_all
from ..simmpi.errors import RankFailStopError
from ..simmpi.nbcoll import ibarrier
from ..simmpi.p2p import waitany
from ..simmpi.request import Request
from .messages import IDX_WATCHDOG, TAG_DONE
from .recv import ensure_watchdog, handle_right_failure
from .state import RingState


def ft_termination_root_bcast(st: RingState) -> None:
    """Root-broadcast termination (paper Fig. 11).

    Aborts the job if the root fails, exactly as the paper's pseudo code
    does (line 24).
    """
    comm = st.comm
    if st.is_root():
        for peer in range(comm.size):
            if peer == st.me:
                continue
            try:
                comm.send(None, peer, TAG_DONE)
            except RankFailStopError:
                pass  # "Ignore fail." — dead ranks need no termination
        return
    req_t = comm.irecv(source=st.root, tag=TAG_DONE)
    while True:
        ensure_watchdog(st)
        if st.watchdog is not None:
            requests: list[Request] = [req_t, st.watchdog]
        else:
            requests = [req_t]
        try:
            idx, _status = waitany(requests)
        except RankFailStopError as exc:
            if exc.index == IDX_WATCHDOG and len(requests) == 2:
                handle_right_failure(st)
                continue
            # Root failed: not supported by this scheme — abort (Fig. 11).
            comm.proc.abort(-1)
        if idx == 0:
            return
        # Watchdog completed with data (two-survivor edge): ignore; the
        # termination receive is still pending.
        st.watchdog = None


def ft_termination_validate_all(st: RingState, mode: str = "full") -> int:
    """Consensus-based termination (paper Fig. 13).

    Runs ``MPI_Icomm_validate_all`` concurrently with the resend watchdog.
    Returns the agreed failure count from the validate.  Tolerates any
    number of failures (including the root) as long as the caller itself
    survives.
    """
    comm = st.comm
    req_v = icomm_validate_all(comm, mode=mode)
    while True:
        ensure_watchdog(st)
        if st.watchdog is not None:
            requests: list[Request] = [req_v, st.watchdog]
        else:
            requests = [req_v]
        try:
            idx, status = waitany(requests)
        except RankFailStopError as exc:
            if exc.index == IDX_WATCHDOG and len(requests) == 2:
                handle_right_failure(st)
                continue
            # "Validate should not fail, but if it does repost" (Fig. 13).
            req_v = icomm_validate_all(comm, mode=mode)
            continue
        if idx == 0:
            return status.count
        st.watchdog = None  # spurious watchdog data: repost and keep waiting


def ft_termination_ibarrier(
    st: RingState, max_retries: int = 3, mode: str = "full"
) -> str:
    """The §III-C alternative the paper *rejects*: ``MPI_Ibarrier`` retry.

    Works in the failure-free case (and is cheap there), but under the
    run-through stabilization rules it cannot survive a failure: after a
    process dies, *every* collective — including a reposted ibarrier —
    keeps returning ``MPI_ERR_RANK_FAIL_STOP`` until a collective
    validate, so the retry loop can never make progress.  After
    ``max_retries`` consecutive collective errors this implementation
    falls back to the Fig. 13 consensus termination, which is exactly the
    paper's conclusion ("considerable cost in both performance and
    complexity"; use the consensus the library already provides).

    Returns ``"ibarrier"`` when the barrier alone sufficed and
    ``"fallback"`` when the consensus rescue was needed.

    .. warning::
       This scheme is kept as a *demonstration of why the paper rejects
       it*.  Because collective return codes are not consistent across
       ranks, a failure striking during the termination phase can leave
       some ranks successfully out of the barrier while others fall back
       to the consensus — and the two groups then wait for each other
       forever.  The simulator proves that hang deterministically (see
       ``bench_ablations.bench_ablation_ibarrier_termination``).  Making
       the retry safe requires agreeing on the outcome of every barrier,
       i.e. a consensus — which is exactly ``MPI_Comm_validate_all``, the
       paper's Fig. 13 answer.
    """
    comm = st.comm
    retries = 0
    req_b = ibarrier(comm)
    while True:
        ensure_watchdog(st)
        if st.watchdog is not None:
            requests: list[Request] = [req_b, st.watchdog]
        else:
            requests = [req_b]
        try:
            idx, _status = waitany(requests)
        except RankFailStopError as exc:
            if exc.index == IDX_WATCHDOG and len(requests) == 2:
                handle_right_failure(st)
                continue
            retries += 1
            if retries > max_retries:
                ft_termination_validate_all(st, mode=mode)
                return "fallback"
            req_b = ibarrier(comm)
            continue
        if idx == 0:
            return "ibarrier"
        st.watchdog = None
