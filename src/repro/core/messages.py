"""Ring message format and tags (paper Fig. 3 lines 1–4).

``RingMsg`` is the paper's ``ring_msg_t``: the accumulated value plus the
iteration *marker* used to detect and drop duplicate (resent) messages
(paper §III-B).
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import Any, Final

#: Tag for normal ring traffic (the paper's ``T_N``).
TAG_NORMAL: Final[int] = 1
#: Tag for the termination message (the paper's ``T_D``).
TAG_DONE: Final[int] = 2
#: Tag for resent ring traffic in the separate-tag dedup variant
#: (the paper's §III-B alternative to iteration markers).
TAG_RESEND: Final[int] = 3

#: Index of the normal receive in the two-request wait (paper ``Idx_N``).
IDX_NORMAL: Final[int] = 0
#: Index of the failure-watchdog receive (paper ``Idx_F``).
IDX_WATCHDOG: Final[int] = 1


@dataclass
class RingMsg:
    """One circulating ring buffer: ``{value; int marker}``.

    The paper's ``ring_msg_t`` carries an ``int`` value; applications
    reusing the ring machinery (e.g. the fault-tolerant ring allreduce in
    :mod:`repro.apps`) may carry any payload in ``value`` — the FT
    machinery only ever touches ``marker``.
    """

    value: Any
    marker: int

    def copy(self) -> "RingMsg":
        """A deep defensive copy; resends must not alias the live buffer."""
        return RingMsg(_copy.deepcopy(self.value), self.marker)
