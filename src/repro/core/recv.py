"""Receive-side machinery of the fault-tolerant ring (paper Figs. 6–10).

Three historical stages of the design, all kept so the benchmark harness
can demonstrate each figure's behaviour:

* :func:`naive_recv_left` — the "first attempt" modeled after
  ``FT_Send_right``: retarget the left neighbor on failure and repost.
  **This version hangs** (paper Fig. 6) when a process dies after
  receiving but before forwarding: the upstream neighbor is already
  waiting for the next iteration and never notices.  The simulator's
  deadlock detector proves the hang.
* :func:`ft_recv_left` with ``st.dedup = False`` — paper Fig. 9 *without*
  lines 24–28: the watchdog ``Irecv`` posted to the right neighbor turns
  the failure detector into a wake-up call, and the last-sent buffer is
  resent; but resends can duplicate messages (paper Fig. 8).
* :func:`ft_recv_left` with ``st.dedup = True`` — the full Fig. 9 with
  the iteration-marker check (Fig. 10): resent messages whose marker is
  below the current iteration are discarded.

The watchdog receive is posted to ``P_R`` on the normal tag: the right
neighbor never sends backwards in the ring, so the only way this request
completes is the ``MPI_ERR_RANK_FAIL_STOP`` raised when ``P_R`` dies.
One deliberate deviation from the paper's pseudo code: when only two
processes survive, ``P_L == P_R`` and a watchdog would share (source, tag)
with the data receive and could swallow a real message, so the watchdog is
suppressed — the data receive itself then reports the peer's death.
"""

from __future__ import annotations

from .. import mutation
from ..simmpi.constants import ANY_TAG
from ..simmpi.errors import RankFailStopError
from ..simmpi.p2p import waitany
from ..simmpi.request import Request
from .messages import IDX_WATCHDOG, TAG_NORMAL, RingMsg
from .neighbors import get_current_root, to_left_of, to_right_of
from .send import ft_send_right
from .state import RingState


class BecameRoot(Exception):
    """Raised (in root-aware mode) when the caller just became the root.

    §III-D: when the old root dies, the new root must stop waiting for a
    normal ring message and instead *regain control* of the iteration
    (see :mod:`repro.core.rootft`).  The exception carries no payload —
    the caller's :class:`~repro.core.state.RingState` has everything.
    """


def naive_recv_left(st: RingState) -> RingMsg:
    """The flawed first-attempt receive (the design paper Fig. 6 breaks).

    Mirrors ``FT_Send_right``: on failure of the left neighbor, pick the
    next left and repost.  Contains no mechanism for noticing that the
    *right* neighbor died holding the ring's control, so the job deadlocks
    in that scenario.
    """
    comm = st.comm
    while True:
        try:
            msg, _status = comm.recv(source=st.left, tag=TAG_NORMAL)
            return msg
        except RankFailStopError:
            st.left = to_left_of(comm, st.left)
            st.stats.left_retargets += 1


def _data_tag(st: RingState) -> int:
    """Receive selector: the split-tag variant must accept resends too."""
    return ANY_TAG if st.resend_tag_split else TAG_NORMAL


def ensure_watchdog(st: RingState) -> None:
    """(Re)post the failure-watchdog ``Irecv`` to the current ``P_R``.

    Cancels a stale watchdog left pointing at a previous right neighbor.
    Suppressed when ``P_L == P_R`` (two survivors; see module docstring).
    """
    comm = st.comm
    wd = st.watchdog
    if st.right == st.left:
        if wd is not None and not wd.done:
            wd.cancel()
        st.watchdog = None
        return
    wd_peer_world = comm.world_rank(st.right)
    if wd is not None and not wd.done and wd.peer == wd_peer_world:
        return
    if wd is not None and not wd.done:
        wd.cancel()
    if comm._known_failed(st.right):
        # Posting to a known-failed rank would complete in error instantly;
        # let the caller's wait observe it that way (paper semantics).
        pass
    st.watchdog = comm.irecv(source=st.right, tag=TAG_NORMAL)


def handle_right_failure(st: RingState) -> None:
    """Paper Fig. 9 lines 11–15: right peer died — repair and resend.

    Advances ``P_R`` past the failure and retransmits the last buffer this
    process passed along, so the ring's control survives (Fig. 7).  If
    nothing was ever sent there is nothing to resend (first iteration).
    """
    comm = st.comm
    st.right = to_right_of(comm, st.right)
    st.stats.right_retargets += 1
    st.watchdog = None
    if st.last_sent is not None:
        ft_send_right(st, st.last_sent, resend=True)


def ft_recv_left(
    st: RingState, accept_from: int | None = None, root_aware: bool = False
) -> RingMsg:
    """Fault-tolerant receive from the left neighbor (paper Fig. 9).

    Waits on two requests: the data receive from ``P_L`` and the watchdog
    posted to ``P_R``.  Failure of ``P_R`` triggers a resend of the last
    buffer (control recovery, Fig. 7); failure of ``P_L`` retargets the
    receive and waits for the nearest alive left neighbor's resend.

    With ``st.dedup`` enabled, messages whose marker is below
    ``accept_from`` (default: the current iteration marker) are discarded
    as duplicates (Fig. 10); with it disabled the duplicate pathology of
    Fig. 8 is observable.
    """
    comm = st.comm
    threshold = st.cur_marker if accept_from is None else accept_from
    req_n = comm.irecv(source=st.left, tag=_data_tag(st))
    while True:
        ensure_watchdog(st)
        if st.watchdog is not None:
            requests: list[Request] = [req_n, st.watchdog]
        else:
            requests = [req_n]
        try:
            idx, _status = waitany(requests)
        except RankFailStopError as exc:
            if exc.index == IDX_WATCHDOG and len(requests) == 2:
                handle_right_failure(st)
            else:
                # Left peer failed: try the nearest alive left peer and
                # wait for it to resend the last buffer (Fig. 7).
                st.left = to_left_of(comm, st.left)
                st.stats.left_retargets += 1
                if root_aware and get_current_root(comm) == comm.rank:
                    # §III-D: the dead left peer was the root and this
                    # process is now the lowest alive rank.  Bail out
                    # before reposting so the recovery receive (not a
                    # leaked request) gets the predecessor's resend.
                    raise BecameRoot() from None
                req_n = comm.irecv(source=st.left, tag=_data_tag(st))
            continue
        if idx == IDX_WATCHDOG:
            # The right neighbor sent backwards: impossible in a ring of
            # three or more (we suppress the watchdog at two).  Repost.
            st.watchdog = None
            continue
        msg: RingMsg = req_n.data
        # The "ring_no_dedup" mutation deliberately disables this marker
        # check so the fuzzer's mutation smoke test can prove it would
        # catch the Fig. 8 duplicate pathology if the defense regressed.
        if (
            st.dedup
            and msg.marker < threshold
            and not mutation.active("ring_no_dedup")
        ):
            st.stats.duplicates_discarded += 1
            # Remember the freshest discarded buffer: if this process is
            # about to become the root, a just-discarded resend may be the
            # very control message recovery needs (§III-D corner case).
            if (
                st.last_discarded is None
                or msg.marker > st.last_discarded.marker
            ):
                st.last_discarded = msg.copy()
            req_n = comm.irecv(source=st.left, tag=_data_tag(st))
            continue
        return msg
