"""Ring drivers: the paper's Fig. 2 baseline and the Fig. 3 FT main loop.

:func:`make_ring_main` builds a per-rank main function for
:class:`~repro.simmpi.runtime.Simulation` from a :class:`RingConfig`.
The configuration selects one of the paper's design stages
(:class:`RingVariant`) and a termination scheme (:class:`Termination`),
so every behavioural figure of the paper is a config away:

==============  =====================================================
Fig. 2          ``RingVariant.BASELINE`` (fault-unaware, fatal errors)
Fig. 6 hang     ``RingVariant.NAIVE`` + failure in the post-recv window
Fig. 7 resend   ``RingVariant.FT_MARKER`` + same failure
Fig. 8 dupes    ``RingVariant.FT_NO_MARKER`` + failure in the post-send
                window
Fig. 10         ``RingVariant.FT_MARKER`` + same failure
Fig. 11         ``Termination.ROOT_BCAST``
Fig. 13         ``Termination.VALIDATE_ALL``
§III-B alt      ``RingVariant.FT_TAGGED`` (resends on a separate tag)
==============  =====================================================

Fault-injection windows are exposed as probe points:

* non-root: ``post_recv`` (received, not yet forwarded — the Fig. 6
  window) and ``post_send`` (forwarded — the Fig. 8 window);
* root: ``root_post_send`` and ``root_post_recv``.

Each probe is hit once per iteration, so "rank 2 dies in iteration 1's
post-recv window" is ``KillAtProbe(rank=2, probe="post_recv", hit=2)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from ..simmpi.errors import ErrorHandler
from ..simmpi.process import SimProcess
from .messages import TAG_NORMAL, RingMsg
from .neighbors import get_current_root, to_left_of, to_right_of
from .recv import ft_recv_left, naive_recv_left
from .send import ft_send_right
from .state import RingState
from .termination import (
    ft_termination_ibarrier,
    ft_termination_root_bcast,
    ft_termination_validate_all,
)


class RingVariant(enum.Enum):
    """Which stage of the paper's design progression to run."""

    #: Paper Fig. 2: fault-unaware, ``MPI_ERRORS_ARE_FATAL``.
    BASELINE = "baseline"
    #: The flawed first-attempt receive (hangs in the Fig. 6 scenario).
    NAIVE = "naive"
    #: Fig. 9 without the marker check (duplicates in the Fig. 8 scenario).
    FT_NO_MARKER = "ft_no_marker"
    #: The full fault-tolerant design (Figs. 9 + 10).
    FT_MARKER = "ft_marker"
    #: §III-B alternative: resends travel on a separate tag.
    FT_TAGGED = "ft_tagged"


class Termination(enum.Enum):
    """Termination-detection scheme (paper §III-C/D)."""

    #: No termination protocol: ranks simply leave the loop.  Kept to
    #: demonstrate *why* termination detection is needed.
    NONE = "none"
    #: Fig. 11: root broadcasts ``T_D``; root failure aborts.
    ROOT_BCAST = "root_bcast"
    #: Fig. 13: non-blocking collective validate as the rendezvous.
    VALIDATE_ALL = "validate_all"
    #: §III-C's rejected alternative: ibarrier retry (falls back to the
    #: consensus validate when a failure makes collectives unusable).
    IBARRIER = "ibarrier"


@dataclass(frozen=True)
class RingConfig:
    """Parameters of one ring run."""

    max_iter: int = 10
    variant: RingVariant = RingVariant.FT_MARKER
    termination: Termination = Termination.ROOT_BCAST
    #: Consensus mode for VALIDATE_ALL termination ("full" or "early").
    validate_mode: str = "full"
    #: Per-iteration local compute time (spreads iterations over virtual
    #: time so failure windows at specific times are easy to hit).
    work_per_iter: float = 0.0


def ring_report(st: RingState, role: str) -> dict[str, Any]:
    """Assemble the per-rank result dictionary the harness consumes."""
    out: dict[str, Any] = {
        "rank": st.me,
        "role": role,
        "left": st.left,
        "right": st.right,
        "root": st.root,
        "cur_marker": st.cur_marker,
    }
    out.update(st.stats.as_dict())
    return out


def baseline_ring_main(mpi: SimProcess, cfg: RingConfig) -> dict[str, Any]:
    """The traditional fault-unaware ring (paper Fig. 2).

    Neighbors are fixed arithmetic; the error handler stays at the default
    ``MPI_ERRORS_ARE_FATAL``, so any failure aborts the whole job.
    """
    comm = mpi.comm_world
    me, size = comm.rank, comm.size
    right = (me + 1) % size
    left = size - 1 if me == 0 else me - 1
    root = 0
    st = RingState(comm, left=left, right=right, root=root)
    for i in range(cfg.max_iter):
        if cfg.work_per_iter:
            mpi.compute(cfg.work_per_iter)
        if me == root:
            buffer = RingMsg(value=1, marker=i)
            comm.send(buffer, right, TAG_NORMAL)
            mpi.probe_point("root_post_send")
            msg, _ = comm.recv(source=left, tag=TAG_NORMAL)
            mpi.probe_point("root_post_recv")
            st.stats.root_completions.append((msg.marker, msg.value))
        else:
            msg, _ = comm.recv(source=left, tag=TAG_NORMAL)
            mpi.probe_point("post_recv")
            msg.value += 1
            comm.send(msg, right, TAG_NORMAL)
            mpi.probe_point("post_send")
            st.stats.forwards += 1
        st.stats.iterations_completed += 1
        st.cur_marker = i + 1
    return ring_report(st, "root" if me == root else "nonroot")


def ft_ring_main(mpi: SimProcess, cfg: RingConfig) -> dict[str, Any]:
    """The fault-tolerant ring main loop (paper Fig. 3).

    Assumes the root does not fail (paper §III assumption; §III-D's
    root-failure-tolerant driver lives in :mod:`repro.core.rootft`).
    """
    comm = mpi.comm_world
    comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
    me = comm.rank
    st = RingState(
        comm,
        left=to_left_of(comm, me),
        right=to_right_of(comm, me),
        root=get_current_root(comm),
        dedup=cfg.variant in (RingVariant.FT_MARKER, RingVariant.FT_TAGGED),
        resend_tag_split=cfg.variant is RingVariant.FT_TAGGED,
    )

    def recv(st: RingState) -> RingMsg:
        if cfg.variant is RingVariant.NAIVE:
            return naive_recv_left(st)
        return ft_recv_left(st)

    for i in range(cfg.max_iter):
        if cfg.work_per_iter:
            mpi.compute(cfg.work_per_iter)
        if st.is_root():
            st.cur_marker = i
            buffer = RingMsg(value=1, marker=i)
            ft_send_right(st, buffer)
            mpi.probe_point("root_post_send")
            msg = recv(st)
            mpi.probe_point("root_post_recv")
            st.stats.root_completions.append((msg.marker, msg.value))
        else:
            msg = recv(st)
            mpi.probe_point("post_recv")
            msg.value += 1
            ft_send_right(st, msg)
            mpi.probe_point("post_send")
            st.cur_marker += 1
        st.stats.iterations_completed += 1

    mpi.probe_point("pre_termination")
    termination_path = cfg.termination.value
    if cfg.termination is Termination.ROOT_BCAST:
        ft_termination_root_bcast(st)
    elif cfg.termination is Termination.VALIDATE_ALL:
        ft_termination_validate_all(st, mode=cfg.validate_mode)
    elif cfg.termination is Termination.IBARRIER:
        termination_path = ft_termination_ibarrier(st, mode=cfg.validate_mode)
    report = ring_report(st, "root" if st.is_root() else "nonroot")
    report["termination_path"] = termination_path
    return report


def make_ring_main(cfg: RingConfig):
    """Bind a :class:`RingConfig` into a ``main(mpi)`` callable."""
    if cfg.variant is RingVariant.BASELINE:
        return lambda mpi: baseline_ring_main(mpi, cfg)
    return lambda mpi: ft_ring_main(mpi, cfg)
