"""Kernel performance counters and benchmark-baseline comparison.

Two related observability layers live here:

* :class:`PerfCounters` — cheap per-simulation counters (fiber handoffs,
  events executed/cancelled, messages matched/unexpected/dropped,
  deliveries, wall seconds) incremented inline by the kernel.  Every
  :class:`~repro.simmpi.runtime.Simulation` run folds its counters into
  the process-wide :data:`SESSION` accumulator, which the benchmark
  harness snapshots around each series so ``BENCH_simperf.json`` carries
  a counters block alongside the wall times.  Later PRs (adaptive
  scheduling, perf-regression gating) key off these numbers.

* :func:`diff_benchmarks` / :func:`format_diff` — compare two
  ``BENCH_simperf.json`` files and flag regressions beyond a threshold
  (the ``repro bench-diff`` subcommand and ``benchmarks/compare.py``
  both wrap this; CI runs it as a soft, non-blocking step).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "BackendMismatch",
    "CACHE",
    "CacheCounters",
    "PerfCounters",
    "SESSION",
    "SeriesDelta",
    "diff_benchmarks",
    "format_diff",
]


class PerfCounters:
    """Monotone counters over one simulation (or an accumulation of many).

    Increments happen on the kernel's hot path, so this is deliberately a
    bag of plain ints behind ``__slots__`` — no locks (the kernel is
    single-threaded-at-a-time by construction), no dicts, no properties.

    One non-numeric slot rides along: :attr:`fibers`, the name of the
    fiber backend the simulation ran on (``"thread"`` or ``"greenlet"``).
    It is provenance, not a measurement — :meth:`add` merges it by
    adoption (an empty label takes the other side's; two different labels
    collapse to ``"mixed"``) and :meth:`delta` skips it entirely, so the
    arithmetic paths stay pure-int over :data:`PerfCounters._NUMERIC`.
    """

    _NUMERIC = (
        "handoffs",
        "events_executed",
        "events_cancelled",
        "messages_sent",
        "messages_matched",
        "messages_unexpected",
        "messages_dropped",
        "deliveries",
        "wall_s",
    )

    __slots__ = _NUMERIC + ("fibers",)

    def __init__(self) -> None:
        #: Scheduler → fiber baton handoffs (≈ simulated MPI calls).
        self.handoffs = 0
        #: Events popped and executed by the main loop.
        self.events_executed = 0
        #: Events cancelled before execution.
        self.events_cancelled = 0
        #: Messages injected into the network (eager + active-message).
        self.messages_sent = 0
        #: Deliveries that matched a posted receive immediately, plus
        #: posted receives satisfied from the unexpected queue.
        self.messages_matched = 0
        #: Deliveries parked in the unexpected queue.
        self.messages_unexpected = 0
        #: Messages dropped because the destination had already failed.
        self.messages_dropped = 0
        #: Messages that reached a live destination's queues.
        self.deliveries = 0
        #: Host wall-clock seconds spent inside the simulation loop.
        self.wall_s = 0.0
        #: Fiber backend the counted simulations ran on (``""`` until a
        #: runtime stamps it; ``"mixed"`` after folding across backends).
        self.fibers = ""

    def add(self, other: "PerfCounters") -> None:
        """Fold *other* into this accumulator."""
        for name in self._NUMERIC:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        if other.fibers:
            if not self.fibers:
                self.fibers = other.fibers
            elif self.fibers != other.fibers:
                self.fibers = "mixed"

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (JSON reports, assertions)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def format(self) -> str:
        """Human-readable counter report."""
        d = self.as_dict()
        wall = d.pop("wall_s")
        backend = d.pop("fibers")
        width = max(len(k) for k in d)
        lines = [f"{k:<{width}}  {v}" for k, v in d.items()]
        lines.append(f"{'wall_s':<{width}}  {wall:.6f}")
        if backend:
            lines.append(f"{'fibers':<{width}}  {backend}")
        if wall > 0:
            rate = self.events_executed / wall
            lines.append(f"{'events_per_s':<{width}}  {rate:,.0f}")
            rate = self.handoffs / wall
            lines.append(f"{'handoffs_per_s':<{width}}  {rate:,.0f}")
        return "\n".join(lines)

    def snapshot(self) -> "PerfCounters":
        """An independent copy (delta bookkeeping in the bench harness)."""
        out = PerfCounters()
        out.add(self)
        return out

    def delta(self, since: "PerfCounters") -> dict[str, Any]:
        """``self - since`` as a dict (bench harness per-series blocks).

        Numeric slots only — the :attr:`fibers` provenance label is not
        subtractable; the bench harness stamps it on each series itself.
        """
        return {
            name: getattr(self, name) - getattr(since, name)
            for name in self._NUMERIC
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"PerfCounters({inner})"


#: Process-wide accumulator: every finished simulation adds its counters
#: here.  Worker processes of a pooled sweep accumulate into their *own*
#: session (counters do not cross the pool boundary); benchmark counter
#: blocks therefore reflect serial runs, which is the default.
SESSION = PerfCounters()


class CacheCounters:
    """Run-cache accounting (see :mod:`repro.cache`): hits, misses, stale
    entries, and stores, accumulated process-wide like :data:`SESSION`.

    Deliberately **separate** from :class:`PerfCounters`: per-simulation
    counters enter result digests and ``.repro.json`` expect blocks, so
    adding slots there would silently change every recorded fingerprint.
    Cache traffic is a property of the sweep harness, not of any one
    simulation, and must never leak into a deterministic report.

    Unlike the kernel counters, these are accurate for pooled sweeps
    too: :class:`repro.cache.CachedRunner` performs every lookup and
    store in the submitting process, so nothing is lost at the pool
    boundary.
    """

    __slots__ = ("hits", "misses", "stale", "stores")

    def __init__(self) -> None:
        #: Jobs answered from the cache without executing a simulation.
        self.hits = 0
        #: Cacheable jobs whose key had no stored entry.
        self.misses = 0
        #: Entries present but unusable (corrupt file, format drift,
        #: payload that failed reconstruction) — re-executed like misses.
        self.stale = 0
        #: Fresh outcomes written back to the store.
        self.stores = 0

    def add(self, other: "CacheCounters") -> None:
        """Fold *other* into this accumulator."""
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (JSON reports, assertions)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def snapshot(self) -> "CacheCounters":
        """An independent copy (delta bookkeeping in harnesses)."""
        out = CacheCounters()
        out.add(self)
        return out

    def delta(self, since: "CacheCounters") -> dict[str, int]:
        """``self - since`` as a dict."""
        return {
            name: getattr(self, name) - getattr(since, name)
            for name in self.__slots__
        }

    def format(self) -> str:
        """One-line human summary (``repro`` CLI stderr reporting)."""
        return (
            f"hits={self.hits} misses={self.misses} "
            f"stale={self.stale} stores={self.stores}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"CacheCounters({inner})"


#: Process-wide cache accumulator (lookups/stores happen parent-side, so
#: this is exact even for pooled sweeps).
CACHE = CacheCounters()


# ----------------------------------------------------------------------
# Benchmark baseline comparison
# ----------------------------------------------------------------------

class BackendMismatch(ValueError):
    """Two benchmark files were recorded under different fiber backends.

    Wall times measured on the thread-baton backend and on the greenlet
    backend are not comparable — the handoff mechanism *is* the dominant
    cost in the kernel microbenchmarks — so :func:`diff_benchmarks`
    refuses the comparison instead of reporting a bogus regression or
    improvement.  Re-record one side, or compare the per-backend series
    (``*_threaded`` vs ``*_greenlet``) within a single file.
    """


def _series_backend(series: dict[str, Any]) -> str:
    """Fiber-backend label recorded with one series (``""`` if absent)."""
    counters = series.get("counters")
    if isinstance(counters, dict):
        return str(counters.get("fibers", "") or "")
    return ""


def _check_backends(base: dict[str, Any], new: dict[str, Any]) -> None:
    """Raise :class:`BackendMismatch` when shared series disagree on
    the fiber backend they were recorded under (unlabeled legacy series
    compare freely)."""
    for name in sorted(set(base) & set(new)):
        b = _series_backend(base[name])
        n = _series_backend(new[name])
        if b and n and b != n:
            raise BackendMismatch(
                f"series {name!r}: baseline recorded under fiber backend "
                f"{b!r} but current under {n!r}; wall times across fiber "
                "backends are not comparable (re-record one side with "
                "REPRO_FIBERS set, or diff the per-backend series instead)"
            )


@dataclass
class SeriesDelta:
    """Relative change of one benchmark series between two files."""

    name: str
    base_min_s: float | None
    new_min_s: float | None
    #: (new - base) / base; ``None`` when either side is missing.
    rel_change: float | None

    @property
    def status(self) -> str:
        if self.rel_change is None:
            return "added" if self.base_min_s is None else "removed"
        return (
            "regression" if self.rel_change > 0 else "improvement"
            if self.rel_change < 0 else "unchanged"
        )


def diff_benchmarks(
    baseline: dict[str, Any] | str | Path,
    current: dict[str, Any] | str | Path,
    *,
    metric: str = "min_wall_s",
) -> list[SeriesDelta]:
    """Compare two ``BENCH_simperf.json`` payloads series by series.

    Raises :class:`BackendMismatch` when any series common to both files
    carries a different ``counters.fibers`` label on each side — numbers
    from different fiber backends must never be diffed against each
    other.
    """
    base = _load(baseline)
    new = _load(current)
    _check_backends(base, new)
    out: list[SeriesDelta] = []
    for name in sorted(set(base) | set(new)):
        b = base.get(name, {}).get(metric)
        n = new.get(name, {}).get(metric)
        rel = ((n - b) / b) if (b and n is not None) else None
        out.append(SeriesDelta(name, b, n, rel))
    return out


def format_diff(
    deltas: Iterable[SeriesDelta], *, threshold: float = 0.20
) -> tuple[str, int]:
    """Render a comparison table; returns ``(text, n_flagged)``.

    A series is *flagged* when it regressed by more than *threshold*
    (relative).  Callers decide whether flags fail the build — CI runs
    this as a soft annotation step.
    """
    lines = [
        f"{'series':<45s} {'baseline':>10s} {'current':>10s} {'change':>8s}"
    ]
    flagged = 0
    for d in deltas:
        b = f"{d.base_min_s:.4f}" if d.base_min_s is not None else "-"
        n = f"{d.new_min_s:.4f}" if d.new_min_s is not None else "-"
        if d.rel_change is None:
            chg, mark = d.status, ""
        else:
            chg = f"{d.rel_change:+.1%}"
            mark = ""
            if d.rel_change > threshold:
                mark = "  << REGRESSION"
                flagged += 1
            elif d.rel_change < -threshold:
                mark = "  (faster)"
        lines.append(f"{d.name:<45s} {b:>10s} {n:>10s} {chg:>8s}{mark}")
    lines.append(
        f"{flagged} series regressed more than {threshold:.0%}"
        if flagged else f"no series regressed more than {threshold:.0%}"
    )
    return "\n".join(lines), flagged


def _load(src: dict[str, Any] | str | Path) -> dict[str, Any]:
    if isinstance(src, dict):
        return src
    return json.loads(Path(src).read_text())
