"""Local validate operations (paper Fig. 1 lines 10–15).

These functions are *local*: they consult only the calling process's
failure knowledge (its view of the perfect failure detector) and its
per-communicator recognition state.  They never communicate.

* :func:`comm_validate_rank` — query one rank's state.
* :func:`comm_validate` — list the failed ranks and their states.
* :func:`comm_validate_clear` — locally *recognize* failures, re-enabling
  point-to-point with those ranks under ``MPI_PROC_NULL`` semantics
  (collectives stay disabled until :func:`~repro.ft.validate_all.comm_validate_all`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..simmpi.communicator import Comm
from ..simmpi.errors import ErrorClass, InvalidArgumentError
from ..simmpi.trace import TraceKind
from .rank_info import RankInfo, RankState


def rank_state(comm: Comm, rank: int) -> RankState:
    """The state of comm rank *rank* as seen by the calling process."""
    if not 0 <= rank < comm.size:
        raise InvalidArgumentError(
            f"rank {rank} out of range for {comm.name}",
            error_class=ErrorClass.ERR_RANK,
        )
    if rank in comm.recognized:
        return RankState.NULL
    if comm._known_failed(rank):
        return RankState.FAILED
    return RankState.OK


def comm_validate_rank(comm: Comm, rank: int) -> RankInfo:
    """``MPI_Comm_validate_rank``: locally query one rank's state."""
    comm.proc._mpi_call("comm_validate_rank")
    return RankInfo(rank=rank, generation=0, state=rank_state(comm, rank))


def comm_validate(comm: Comm) -> list[RankInfo]:
    """``MPI_Comm_validate``: locally list all failed ranks (any state)."""
    comm.proc._mpi_call("comm_validate")
    out = []
    for rank in range(comm.size):
        state = rank_state(comm, rank)
        if state is not RankState.OK:
            out.append(RankInfo(rank=rank, generation=0, state=state))
    return out


def comm_validate_clear(comm: Comm, ranks: Iterable[int] | Sequence[RankInfo]) -> int:
    """``MPI_Comm_validate_clear``: locally recognize failed ranks.

    Accepts plain comm ranks or :class:`RankInfo` objects (as returned by
    :func:`comm_validate`).  Ranks that are not known-failed are ignored —
    recognition applies only to failures this process has been notified
    of.  Returns the number of ranks newly recognized.

    After recognition, point-to-point operations addressed to those ranks
    follow ``MPI_PROC_NULL`` semantics; collective operations remain
    disabled until a collective validate.
    """
    proc = comm.proc
    proc._mpi_call("comm_validate_clear")
    newly = 0
    for item in ranks:
        rank = item.rank if isinstance(item, RankInfo) else int(item)
        if not 0 <= rank < comm.size:
            raise InvalidArgumentError(
                f"rank {rank} out of range for {comm.name}",
                error_class=ErrorClass.ERR_RANK,
            )
        if rank in comm.recognized:
            continue
        if comm._known_failed(rank):
            comm.recognized.add(rank)
            newly += 1
    if newly:
        proc.runtime.trace.record(
            proc.now, TraceKind.VALIDATE, proc.rank,
            op="clear", comm=comm.name, recognized=sorted(comm.recognized),
        )
    return newly
