"""ULFM-style recovery primitives: ``agree`` and ``shrink``.

The run-through stabilization proposal (the paper) and ULFM (User-Level
Failure Mitigation, the model MPI-4+ adopted) answer the same question —
*what does an application do after fail-stop?* — with different
primitives.  RTS keeps the communicator and re-enables it with a
collective validate; ULFM **revokes** the broken communicator,
**agrees** on what happened, and **shrinks** to a new communicator of
survivors (Rocco & Palermo, arXiv:2209.01849).  The revoke mechanics
live in the kernel (:meth:`repro.simmpi.Comm.revoke`); this module
implements the two collective halves on top of the active-message layer:

``comm_agree(comm, value, op)``
    ULFM ``MPI_Comm_agree``: a fault-tolerant agreement on the reduction
    of every live member's contribution.  Implemented as a FloodSet run
    (same algorithm as :mod:`repro.ft.consensus`, same perfect-detector
    round termination) flooding ``(rank, value)`` contribution pairs
    instead of bare failed ranks: every survivor decides the identical
    contribution map, then folds it locally with ``op`` — so the fold is
    deterministic and identical everywhere.  Crucially it runs on its
    own AM context (:data:`CTX_AGREE`), which the revocation sweep
    spares: agreement still works on a revoked communicator, which is
    the whole point.

``comm_shrink(comm)``
    ULFM ``MPI_Comm_shrink``: agree (via ``comm_agree``) on the union of
    everyone's known failed comm ranks, then build the survivor
    communicator — original rank order preserved, context id allocated
    deterministically through :meth:`Runtime.cid_for` so every survivor
    constructs the same communicator without further communication.

Both are collective over the communicator's membership: every live
member must call them the same number of times (instances are aligned by
a per-handle counter, like the validate collective).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..simmpi.communicator import Comm
from ..simmpi.p2p import wait
from ..simmpi.request import Request, RequestKind, Status
from ..simmpi.trace import TraceKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simmpi.matching import Message
    from ..simmpi.runtime import Runtime

#: Context offset for the agreement protocol's active messages (offsets
#: 0-2 are p2p / collectives / validate-consensus; 3-7 were free).
CTX_AGREE = 3

_ENGINE_ATTR = "_ft_agree_engine"

#: Reduction ops for folding the agreed contribution map.
AGREE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "min": min,
    "max": max,
    "sum": lambda a, b: a + b,
    "union": lambda a, b: a | b,
    "band": lambda a, b: a & b,
}


def _resolve_op(op: str | Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    try:
        return AGREE_OPS[op]
    except KeyError:
        raise ValueError(f"unknown agree op {op!r} (known: {sorted(AGREE_OPS)})")


@dataclass(slots=True)
class _AgreeMsg:
    """Wire format: one flooded round of contribution pairs."""

    cid: int
    instance: int
    round: int
    sender: int  # world rank
    #: Accumulated ``(comm_rank, value)`` contribution pairs.
    w: frozenset[tuple[int, Any]]


@dataclass(slots=True)
class _AgreeInstance:
    """Per-(rank, comm, instance) agreement state."""

    owner: int
    cid: int
    instance: int
    members: tuple[int, ...] = ()
    comm: Comm | None = None
    request: Request | None = None
    started: bool = False
    decided: bool = False
    round: int = 0
    w: set[tuple[int, Any]] = field(default_factory=set)
    heard: dict[int, set[int]] = field(default_factory=dict)
    payloads: dict[int, list[frozenset[tuple[int, Any]]]] = field(
        default_factory=dict
    )

    @property
    def total_rounds(self) -> int:
        return len(self.members)


class AgreementEngine:
    """FloodSet over contribution pairs — the ``MPI_Comm_agree`` engine.

    Structured exactly like :class:`repro.ft.consensus.ConsensusEngine`
    (strict in-order rounds, perfect-detector wait sets, per-rank state
    partitioning); it floods ``(rank, value)`` pairs and leaves failure
    recognition alone — agreement must not recognize anything, because
    the shrink that follows discards the communicator entirely.
    """

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        self._instances: dict[tuple[int, int, int], _AgreeInstance] = {}
        self._listening: set[int] = set()
        self._handling: set[tuple[int, int]] = set()

    # -- plumbing ----------------------------------------------------------

    def ensure_comm(self, comm: Comm) -> None:
        ctx = comm.context(CTX_AGREE)
        for wr in comm.group:
            if (wr, ctx) not in self._handling:
                self._handling.add((wr, ctx))
                self.runtime.register_am_handler(
                    wr, ctx, lambda msg, t, r=wr: self._on_message(r, msg, t)
                )
            if wr not in self._listening:
                self._listening.add(wr)
                self.runtime.add_failure_listener(
                    wr, lambda obs, failed, t: self._on_failure(obs, failed, t)
                )

    def _inst(self, owner: int, cid: int, instance: int) -> _AgreeInstance:
        key = (owner, cid, instance)
        inst = self._instances.get(key)
        if inst is None:
            inst = _AgreeInstance(owner=owner, cid=cid, instance=instance)
            self._instances[key] = inst
        return inst

    # -- local call --------------------------------------------------------

    def start(self, comm: Comm, instance: int, value: Any, request: Request) -> None:
        self.ensure_comm(comm)
        proc = comm.proc
        inst = self._inst(proc.rank, comm.cid, instance)
        assert not inst.started, "agree instance started twice"
        inst.comm = comm
        inst.request = request
        inst.members = comm.group
        inst.started = True
        inst.w.add((comm.rank, value))
        proc.runtime.trace.record(
            proc.now, TraceKind.VALIDATE, proc.rank,
            op="agree_start", comm=comm.name, instance=instance,
        )
        self._enter_round(inst, 1, proc.now)
        if not inst.decided:
            self._check_round(inst, proc.now)

    # -- protocol engine ---------------------------------------------------

    def _expected(self, inst: _AgreeInstance) -> set[int]:
        dead = self.runtime.known_by[inst.owner]
        return {m for m in inst.members if m != inst.owner and m not in dead}

    def _enter_round(self, inst: _AgreeInstance, r: int, time: float) -> None:
        inst.round = r
        assert inst.comm is not None
        payload = _AgreeMsg(
            cid=inst.cid, instance=inst.instance, round=r,
            sender=inst.owner, w=frozenset(inst.w),
        )
        ctx = inst.comm.context(CTX_AGREE)
        for m in self._expected(inst):
            self.runtime.send_am(inst.owner, m, ctx, payload)

    def _check_round(self, inst: _AgreeInstance, time: float) -> None:
        while inst.started and not inst.decided:
            r = inst.round
            heard = inst.heard.setdefault(r, set())
            if not self._expected(inst) <= heard:
                return
            for w in inst.payloads.pop(r, []):
                inst.w |= w
            if r >= inst.total_rounds:
                self._decide(inst, time)
                return
            self._enter_round(inst, r + 1, time)

    def _decide(self, inst: _AgreeInstance, time: float) -> None:
        inst.decided = True
        decision = frozenset(inst.w)
        assert inst.request is not None and inst.comm is not None
        self.runtime.trace.record(
            time, TraceKind.VALIDATE, inst.owner,
            op="agree_decide", comm=inst.comm.name, instance=inst.instance,
            contributors=sorted(r for r, _v in decision), round=inst.round,
        )
        inst.request.complete(
            time, data=decision, status=Status(count=len(decision))
        )

    # -- event-context inputs ----------------------------------------------

    def _on_message(self, owner: int, msg: "Message", time: float) -> None:
        am: _AgreeMsg = msg.payload
        inst = self._inst(owner, am.cid, am.instance)
        if inst.decided:
            return
        inst.heard.setdefault(am.round, set()).add(am.sender)
        inst.payloads.setdefault(am.round, []).append(am.w)
        if inst.started:
            self._check_round(inst, time)

    def _on_failure(self, observer: int, failed: int, time: float) -> None:
        for inst in list(self._instances.values()):
            if inst.owner != observer or not inst.started or inst.decided:
                continue
            self._check_round(inst, time)


def agree_engine_for(runtime: "Runtime") -> AgreementEngine:
    """Get (or lazily create) the simulation's agreement engine."""
    engine = getattr(runtime, _ENGINE_ATTR, None)
    if engine is None:
        engine = AgreementEngine(runtime)
        setattr(runtime, _ENGINE_ATTR, engine)
    return engine


def _agree_seq(comm: Comm) -> "itertools.count[int]":
    seq = getattr(comm, "_agree_seq", None)
    if seq is None:
        seq = itertools.count()
        comm._agree_seq = seq  # type: ignore[attr-defined]
    return seq


def set_agree_instance(comm: Comm, instance: int) -> None:
    """Fast-forward the per-handle agree counter (partial-restart recruit:
    a freshly joined member must align with the survivors' instance
    numbering, which it learns from its recruit message)."""
    comm._agree_seq = itertools.count(instance)  # type: ignore[attr-defined]


def next_agree_instance(comm: Comm) -> int:
    """Peek-free accessor used to ship the counter to a recruit."""
    instance = next(_agree_seq(comm))
    set_agree_instance(comm, instance)  # un-consume
    return instance


def icomm_agree(comm: Comm, value: Any) -> Request:
    """Non-blocking ``MPI_Comm_agree``: request completes with the agreed
    frozen set of ``(comm_rank, value)`` contribution pairs."""
    proc = comm.proc
    proc._mpi_call("icomm_agree")
    instance = next(_agree_seq(comm))
    req = Request(RequestKind.GENERIC, proc, comm=None, label="comm_agree")
    engine = agree_engine_for(proc.runtime)
    engine.start(comm, instance, value, req)
    return req


def comm_agree(comm: Comm, value: Any, op: str | Callable[[Any, Any], Any] = "min") -> Any:
    """ULFM ``MPI_Comm_agree``: agreed fold of every member's *value*.

    Tolerates members failing at any point (FloodSet with a perfect
    failure detector); works on a revoked communicator.  All survivors
    return the identical result: the ``op``-fold over the agreed
    contribution map, in rank order.  Contributions from members that
    died mid-protocol may or may not be included — but identically so at
    every survivor, which is the agreement guarantee that matters.
    """
    fold = _resolve_op(op)
    req = icomm_agree(comm, value)
    wait(req)
    contributions = sorted(req.data, key=lambda rv: rv[0])
    values = [v for _r, v in contributions]
    result = values[0]
    for v in values[1:]:
        result = fold(result, v)
    return result


def comm_shrink(comm: Comm, name: str = "") -> Comm:
    """ULFM ``MPI_Comm_shrink``: agree on the failed set, build survivors.

    The survivor group preserves the original rank order (members minus
    the agreed dead), and the new context id comes from the deterministic
    ``cid_for`` registry, so every survivor constructs an identical
    communicator handle with no extra communication.  The new
    communicator starts clean: no recognized/validated state, not
    revoked.  Failures *not yet agreed* (detection still in flight)
    surface as fresh errors on the new communicator — callers loop
    revoke/shrink until quiet, as ULFM applications do.
    """
    proc = comm.proc
    proc._mpi_call("comm_shrink")
    dead: frozenset[int] = comm_agree(
        comm, frozenset(comm.known_failed_comm_ranks()), op="union"
    )
    op_index = next(comm._create_seq)
    group = tuple(wr for cr, wr in enumerate(comm.group) if cr not in dead)
    cid = proc.runtime.cid_for(comm.cid, op_index, color="shrink")
    return Comm(proc, cid, group, name or f"{comm.name}.shrink{op_index}")
