"""``repro.ft`` — the run-through stabilization layer (paper Fig. 1).

This package implements the MPI Forum Fault Tolerance Working Group
interface the paper builds on, over the :mod:`repro.simmpi` substrate:

=============================  ==========================================
Paper interface                Here
=============================  ==========================================
``MPI_Rank_info``              :class:`RankInfo` / :class:`RankState`
``MPI_Comm_validate_rank``     :func:`comm_validate_rank`
``MPI_Comm_validate``          :func:`comm_validate`
``MPI_Comm_validate_clear``    :func:`comm_validate_clear`
``MPI_Comm_validate_all``      :func:`comm_validate_all`
``MPI_Icomm_validate_all``     :func:`icomm_validate_all`
=============================  ==========================================

The collective validate runs a real fault-tolerant consensus
(:mod:`repro.ft.consensus`) over the simulated network.

Beyond RTS, :mod:`repro.ft.ulfm` adds the ULFM-style primitives
(``comm_agree`` / ``comm_shrink``, paired with the kernel's
``Comm.revoke``) that the shrink/repair and partial-restart protocol
families in :mod:`repro.protocols` are built on.
"""

from .consensus import ConsensusEngine, engine_for
from .rank_info import RankInfo, RankState
from .recovery import RecoveryBlockError, run_recovery_block
from .ulfm import (
    AgreementEngine,
    comm_agree,
    comm_shrink,
    icomm_agree,
    next_agree_instance,
    set_agree_instance,
)
from .validate import comm_validate, comm_validate_clear, comm_validate_rank, rank_state
from .validate_all import comm_validate_all, icomm_validate_all

__all__ = [
    "AgreementEngine",
    "ConsensusEngine",
    "comm_agree",
    "comm_shrink",
    "icomm_agree",
    "next_agree_instance",
    "set_agree_instance",
    "RankInfo",
    "RankState",
    "comm_validate",
    "comm_validate_all",
    "comm_validate_clear",
    "comm_validate_rank",
    "RecoveryBlockError",
    "run_recovery_block",
    "engine_for",
    "icomm_validate_all",
    "rank_state",
]
