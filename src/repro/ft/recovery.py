"""Agreed recovery blocks for collectives (paper §II, Randell [10]).

The paper points out that ``MPI_Comm_validate_all`` "is useful in
creating recovery blocks for sets of collective operations".  Getting the
pattern right is subtler than it looks, because collective return codes
are **inconsistent**: a failure can leave some ranks with a successful
collective and others with ``MPI_ERR_RANK_FAIL_STOP``.  The naive

    while True:
        try: return collective()
        except RankFailStopError: comm_validate_all(comm)

deadlocks in exactly that case — the erroring ranks retry (consuming an
extra collective call) while the succeeding ranks move on, and the ranks
are forever misaligned on which collective call is which.  (This
repository found the bug in its own ABFT app via the mid-collective
failure sweep; see ``tests/test_collective_recovery.py``.)

The correct pattern makes the *retry decision itself agreed*, using the
consensus the library already provides:

1. attempt the block (success or failure, locally);
2. run ``comm_validate_all`` — every rank, every round;
3. retry iff the agreed validated set **grew** (a failure struck this
   round).  The decision is a pure function of the consensus output, so
   every rank makes the same choice and collective call order stays
   aligned.

Ranks that succeeded before a retry recompute the block; callers
therefore need idempotent blocks (true for MPI collectives, whose outputs
are pure functions of their inputs over the surviving membership).
"""

from __future__ import annotations

from typing import Callable, TypeVar

from ..simmpi.communicator import Comm
from ..simmpi.errors import RankFailStopError
from .validate_all import comm_validate_all

T = TypeVar("T")


class RecoveryBlockError(RuntimeError):
    """The block kept failing without the membership changing.

    Raised after ``max_attempts`` rounds in which the collective errored
    but the agreed validated set did not grow — which indicates a bug in
    the block (a genuine failure always grows the set on the next
    validate, because the erroring rank knows the failure at entry).
    """


def run_recovery_block(
    comm: Comm,
    block: Callable[[], T],
    *,
    mode: str = "full",
    max_attempts: int = 16,
) -> T:
    """Run *block* (one or more collectives) with agreed retry on failure.

    Returns the block's value once a round completes with no membership
    change.  All ranks of *comm* must call this the same number of times
    with equivalent blocks (the usual collective-ordering contract).
    """
    last_error: Exception | None = None
    for _attempt in range(max_attempts):
        err = False
        value: T | None = None
        try:
            value = block()
        except RankFailStopError as exc:
            err = True
            last_error = exc
        before = frozenset(comm.validated)
        comm_validate_all(comm, mode=mode)
        if frozenset(comm.validated) != before:
            continue  # agreed: membership changed this round -> all retry
        if err:
            # Errored without a membership change: the failure must have
            # been validated in an earlier round; one more retry round is
            # consistent (every erroring rank takes it, succeeding ranks
            # saw no change and... would desync).  This cannot happen for
            # genuine fail-stop errors, so treat it as a usage bug.
            raise RecoveryBlockError(
                f"collective kept failing with stable membership: "
                f"{last_error}"
            ) from last_error
        return value  # type: ignore[return-value]
    raise RecoveryBlockError(
        f"recovery block did not converge after {max_attempts} attempts"
    ) from last_error
