"""Collective validate (paper Fig. 1 lines 16–18).

* :func:`icomm_validate_all` — non-blocking: returns a
  :class:`~repro.simmpi.request.Request` that completes (in the progress
  engine, off the application thread) once the fault-tolerant consensus
  decides.  This is the request the paper's Fig. 13 termination-detection
  code passes to ``MPI_Waitany`` alongside the resend watchdog.
* :func:`comm_validate_all` — the blocking form: start + wait.

On completion, the agreed set of failed comm ranks has been recognized
both for point-to-point (``MPI_PROC_NULL`` semantics) and for collectives
(which are hereby re-enabled), and the request's ``data`` holds the
decision; its status ``count`` is the agreed total number of failures —
the function's ``outcount``.
"""

from __future__ import annotations

from ..simmpi.communicator import Comm
from ..simmpi.p2p import wait
from ..simmpi.request import Request, RequestKind

from .consensus import engine_for


def icomm_validate_all(comm: Comm, mode: str = "full") -> Request:
    """``MPI_Icomm_validate_all``: start the collective validate.

    ``mode`` selects the consensus variant: ``"full"`` runs the worst-case
    ``len(comm.group)`` flooding rounds (simplest correctness argument);
    ``"early"`` decides as soon as two consecutive rounds are stable
    (fewer messages in the common case).  All members of one collective
    call must pass the same mode.
    """
    proc = comm.proc
    proc._mpi_call("icomm_validate_all")
    instance = next(comm._validate_seq)
    req = Request(RequestKind.VALIDATE, proc, comm, label=f"validate_all#{instance}")
    engine = engine_for(proc.runtime)
    engine.start(comm, instance, req, mode=mode)
    engine.on_start_check_buffered(comm, instance, proc.now)
    return req


def comm_validate_all(comm: Comm, mode: str = "full") -> int:
    """``MPI_Comm_validate_all``: blocking collective validate.

    Returns the agreed total number of failed ranks in the communicator
    (the ``outcount`` of the paper's interface).
    """
    req = icomm_validate_all(comm, mode=mode)
    status = wait(req)
    return status.count
