"""``MPI_Rank_info`` and rank states (paper Fig. 1 lines 1–9)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RankState(enum.Enum):
    """State of a rank as seen by one process on one communicator."""

    #: Normal running state (``MPI_RANK_OK``).
    OK = "ok"
    #: Failed and **not yet recognized** by this process on this
    #: communicator (``MPI_RANK_FAILED``): referencing it raises
    #: ``MPI_ERR_RANK_FAIL_STOP``.
    FAILED = "failed"
    #: Failed and recognized (``MPI_RANK_NULL``): referencing it follows
    #: ``MPI_PROC_NULL`` semantics.
    NULL = "null"


@dataclass(frozen=True)
class RankInfo:
    """Snapshot of one rank's (rank, generation, state) triple.

    ``generation`` distinguishes successively recovered incarnations of a
    rank.  Run-through stabilization never recovers processes, so it stays
    0 throughout this reproduction (exactly as the paper notes in §II).
    """

    rank: int
    generation: int
    state: RankState

    def ok(self) -> bool:
        """Convenience: is this rank running normally?"""
        return self.state is RankState.OK
