"""Fault-tolerant consensus for the collective validate (paper §II).

The proposal states that ``MPI_Comm_validate_all`` "provides the
application with an implementation of a fault tolerant consensus
algorithm".  Rather than oracle-ing the agreement inside the simulator, we
implement a real one and run it over the simulated network, so its failure
behaviour (including processes dying *mid-protocol*) is honest.

Algorithm: **FloodSet** (Lynch, *Distributed Algorithms*, §6.2) adapted to
an asynchronous system with a perfect failure detector:

* Every participant enters the protocol with a *proposal* — the set of
  comm ranks it currently knows to have failed.
* The protocol proceeds in rounds.  In round ``r`` each participant sends
  its accumulated set ``W`` to every member it does not know to be dead,
  then waits until it holds a round-``r`` message from every such member
  (the wait set shrinks as the detector reports deaths — that is what
  makes the emulated round terminate).
* Rounds are processed strictly in order; payloads from future rounds are
  buffered unmerged, so the execution is exactly a synchronous FloodSet
  run under a synchronizer and the classic agreement proof applies.
* After ``R = len(members)`` rounds (≥ f + 1 for any failure count f),
  every surviving participant holds the same ``W`` and decides
  ``D = W`` — the agreed set of failed comm ranks.

An **early-deciding** mode (``mode="early"``) stops as soon as two
consecutive rounds hear from the same member set (the standard
early-stopping rule); deciders broadcast a ``DECIDE`` message that
recipients adopt and re-forward (reliable-broadcast style), which keeps
agreement and avoids the full ``R`` rounds in the common failure-free
case.  The exhaustive fault-injection tests cover both modes.

The protocol runs on the runtime's active-message layer: all sends and
state transitions happen in event context (the "MPI progress engine"),
which is what makes the *non-blocking* ``MPI_Icomm_validate_all`` of
paper Fig. 13 possible without burning the application thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..simmpi.communicator import CTX_AM, Comm
from ..simmpi.request import Request, Status
from ..simmpi.trace import TraceKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simmpi.matching import Message
    from ..simmpi.runtime import Runtime

#: Engine attribute name stashed on the runtime (one engine per simulation).
_ENGINE_ATTR = "_ft_consensus_engine"


@dataclass(slots=True)
class _RoundMsg:
    """Wire format of one consensus message."""

    kind: str  # "round" or "decide"
    cid: int
    instance: int
    round: int
    sender: int  # world rank
    #: Accumulated failed-set (comm ranks), frozen for safe sharing.
    w: frozenset[int]


@dataclass(slots=True)
class _Instance:
    """Per-(rank, comm, instance) protocol state."""

    owner: int  # world rank whose state this is
    cid: int
    instance: int
    members: tuple[int, ...] = ()
    comm: Comm | None = None  # set when the local call starts
    request: Request | None = None
    mode: str = "full"
    started: bool = False
    decided: bool = False
    round: int = 0
    w: set[int] = field(default_factory=set)
    #: world ranks heard from, per round.
    heard: dict[int, set[int]] = field(default_factory=dict)
    #: unmerged payloads per round (strict in-order merging).
    payloads: dict[int, list[frozenset[int]]] = field(default_factory=dict)
    decision: frozenset[int] | None = None
    #: Memoised wait set: ``(len(known_failed), members_minus_dead)``.
    #: Failure knowledge only grows, so the set is stale iff the count
    #: changed; callers must treat the cached set as read-only.
    exp_cache: tuple[int, set[int]] | None = None

    @property
    def total_rounds(self) -> int:
        return len(self.members)


class ConsensusEngine:
    """Distributed-state holder for every rank's consensus instances.

    The engine is a single simulator-level object, but its state is
    strictly partitioned per world rank: rank p's instances are only ever
    touched by deliveries addressed to p, detector notifications for p,
    and p's own local calls — the same isolation a real per-process
    progress engine would have.
    """

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        self._instances: dict[tuple[int, int, int], _Instance] = {}
        self._listening: set[int] = set()
        self._handling: set[tuple[int, int]] = set()

    # -- plumbing ----------------------------------------------------------

    def ensure_comm(self, comm: Comm) -> None:
        """Register AM handlers + failure listeners for every member."""
        ctx = comm.context(CTX_AM)
        for wr in comm.group:
            if (wr, ctx) not in self._handling:
                self._handling.add((wr, ctx))
                self.runtime.register_am_handler(
                    wr, ctx, lambda msg, t, r=wr: self._on_message(r, msg, t)
                )
            if wr not in self._listening:
                self._listening.add(wr)
                self.runtime.add_failure_listener(
                    wr, lambda obs, failed, t: self._on_failure(obs, failed, t)
                )

    def _inst(self, owner: int, cid: int, instance: int) -> _Instance:
        key = (owner, cid, instance)
        inst = self._instances.get(key)
        if inst is None:
            inst = _Instance(owner=owner, cid=cid, instance=instance)
            self._instances[key] = inst
        return inst

    # -- local call --------------------------------------------------------

    def start(
        self, comm: Comm, instance: int, request: Request, mode: str = "full"
    ) -> None:
        """Begin the protocol at ``comm.proc`` for one validate instance."""
        if mode not in ("full", "early"):
            raise ValueError(f"unknown consensus mode {mode!r}")
        self.ensure_comm(comm)
        proc = comm.proc
        inst = self._inst(proc.rank, comm.cid, instance)
        assert not inst.started, "validate instance started twice"
        inst.comm = comm
        inst.request = request
        inst.mode = mode
        inst.members = comm.group
        inst.started = True
        # Proposal: everything I currently know to have failed, as comm ranks.
        inst.w.update(comm.known_failed_comm_ranks())
        proc.runtime.trace.record(
            proc.now, TraceKind.VALIDATE, proc.rank,
            op="all_start", comm=comm.name, instance=instance,
            proposal=sorted(inst.w),
        )
        self._enter_round(inst, 1, proc.now)

    # -- protocol engine ---------------------------------------------------

    def _known_failed(self, owner: int) -> frozenset[int]:
        return self.runtime.known_failed_set(owner)

    def _expected(self, inst: _Instance) -> set[int]:
        """Members still awaited (read-only — see ``_Instance.exp_cache``).

        Recomputed only when the owner's failure knowledge has grown;
        ``_check_round`` re-evaluates this on every delivery, so the memo
        turns a per-message set comprehension into a length check.
        """
        dead = self.runtime.known_by[inst.owner]
        cached = inst.exp_cache
        if cached is not None and cached[0] == len(dead):
            return cached[1]
        exp = {m for m in inst.members if m != inst.owner and m not in dead}
        inst.exp_cache = (len(dead), exp)
        return exp

    def _enter_round(self, inst: _Instance, r: int, time: float) -> None:
        inst.round = r
        obs = self.runtime.obs
        if obs is not None:
            obs.consensus_round(
                inst.owner, (inst.cid, inst.instance), r, time
            )
        payload = _RoundMsg(
            kind="round",
            cid=inst.cid,
            instance=inst.instance,
            round=r,
            sender=inst.owner,
            w=frozenset(inst.w),
        )
        assert inst.comm is not None
        ctx = inst.comm.context(CTX_AM)
        for m in self._expected(inst):
            self.runtime.send_am(inst.owner, m, ctx, payload)
        self._check_round(inst, time)

    def _check_round(self, inst: _Instance, time: float) -> None:
        """Advance through every round whose quota is already met."""
        while inst.started and not inst.decided:
            r = inst.round
            heard = inst.heard.setdefault(r, set())
            if not self._expected(inst) <= heard:
                return
            for w in inst.payloads.pop(r, []):
                inst.w |= w
            if r >= inst.total_rounds:
                self._decide(inst, frozenset(inst.w), time, how="rounds")
                return
            if (
                inst.mode == "early"
                and r >= 2
                and inst.heard.get(r) == inst.heard.get(r - 1)
            ):
                self._decide(inst, frozenset(inst.w), time, how="early")
                self._broadcast_decide(inst)
                return
            self._enter_round(inst, r + 1, time)

    def _broadcast_decide(self, inst: _Instance) -> None:
        assert inst.comm is not None and inst.decision is not None
        payload = _RoundMsg(
            kind="decide",
            cid=inst.cid,
            instance=inst.instance,
            round=inst.round,
            sender=inst.owner,
            w=inst.decision,
        )
        ctx = inst.comm.context(CTX_AM)
        for m in self._expected(inst):
            self.runtime.send_am(inst.owner, m, ctx, payload)

    def _decide(
        self, inst: _Instance, decision: frozenset[int], time: float, how: str
    ) -> None:
        inst.decided = True
        inst.decision = decision
        comm = inst.comm
        assert comm is not None and inst.request is not None
        # Collective recognition: the agreed failures become PROC_NULL for
        # both point-to-point and collectives, re-enabling the latter.
        comm.recognized |= decision
        comm.validated |= decision
        self.runtime.trace.record(
            time, TraceKind.VALIDATE, inst.owner,
            op="all_decide", comm=comm.name, instance=inst.instance,
            decision=sorted(decision), how=how, round=inst.round,
        )
        obs = self.runtime.obs
        if obs is not None:
            obs.consensus_decided(
                inst.owner, (inst.cid, inst.instance), time, how, inst.round
            )
        inst.request.complete(
            time,
            data=decision,
            status=Status(count=len(decision)),
        )

    # -- event-context inputs ----------------------------------------------

    def _on_message(self, owner: int, msg: "Message", time: float) -> None:
        rm: _RoundMsg = msg.payload
        if rm.cid * 1 != rm.cid:  # pragma: no cover - defensive
            return
        inst = self._inst(owner, rm.cid, rm.instance)
        if inst.decided:
            return
        if rm.kind == "decide":
            if inst.started:
                # Reliable-broadcast adoption: re-forward, then decide.
                inst.decision = rm.w
                self._forward_decide(inst, rm)
                self._decide(inst, rm.w, time, how="adopted")
            else:
                # Not yet in the protocol locally: remember the decision;
                # adopt the moment the local call starts.
                inst.payloads.setdefault(-1, []).append(rm.w)
            return
        inst.heard.setdefault(rm.round, set()).add(rm.sender)
        inst.payloads.setdefault(rm.round, []).append(rm.w)
        if inst.started:
            self._maybe_adopt_buffered_decide(inst, time)
            if not inst.decided:
                self._check_round(inst, time)

    def _forward_decide(self, inst: _Instance, rm: _RoundMsg) -> None:
        assert inst.comm is not None
        ctx = inst.comm.context(CTX_AM)
        fwd = _RoundMsg(
            kind="decide", cid=rm.cid, instance=rm.instance,
            round=rm.round, sender=inst.owner, w=rm.w,
        )
        for m in self._expected(inst):
            self.runtime.send_am(inst.owner, m, ctx, fwd)

    def _maybe_adopt_buffered_decide(self, inst: _Instance, time: float) -> None:
        buffered = inst.payloads.pop(-1, None)
        if buffered and not inst.decided:
            w = buffered[0]
            rm = _RoundMsg(kind="decide", cid=inst.cid, instance=inst.instance,
                           round=inst.round, sender=inst.owner, w=w)
            self._forward_decide(inst, rm)
            self._decide(inst, w, time, how="adopted")

    def on_start_check_buffered(self, comm: Comm, instance: int, time: float) -> None:
        """After a local start, absorb any decision that arrived early."""
        inst = self._inst(comm.proc.rank, comm.cid, instance)
        self._maybe_adopt_buffered_decide(inst, time)
        if not inst.decided:
            self._check_round(inst, time)

    def _on_failure(self, observer: int, failed: int, time: float) -> None:
        for inst in list(self._instances.values()):
            if inst.owner != observer or not inst.started or inst.decided:
                continue
            self._check_round(inst, time)


def engine_for(runtime: "Runtime") -> ConsensusEngine:
    """Get (or lazily create) the simulation's consensus engine."""
    engine = getattr(runtime, _ENGINE_ATTR, None)
    if engine is None:
        engine = ConsensusEngine(runtime)
        setattr(runtime, _ENGINE_ATTR, engine)
    return engine
