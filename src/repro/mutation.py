"""Test-only mutation switches: deliberately break a protocol defense.

Mutation testing asks "would the test harness notice if this defense
were gone?"  A *mutation* is a named switch that disables one specific
protocol mechanism; the fuzzer (:mod:`repro.fuzz`) is then pointed at
the weakened build and must find — and shrink — a reproducer for the
resulting violation.  The smoke test in ``tests/test_mutation.py`` does
exactly this for the ring's duplicate-iteration marker check.

Switches are read at protocol decision points through :func:`active`.
They default to off and are only ever turned on by tests, either through
:func:`activate`/:func:`deactivate` (or the :func:`enabled` context
manager) in-process, or through the ``REPRO_MUTATIONS`` environment
variable (comma-separated names) for spawned worker processes.  Nothing
in the production code path sets them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Mutations this build knows about (guards against typos in tests).
KNOWN = frozenset({
    # Disable the ring's Fig. 10 iteration-marker duplicate check:
    # resent messages are accepted even when already processed.
    "ring_no_dedup",
})

_ACTIVE: set[str] = set()


def _check(name: str) -> str:
    if name not in KNOWN:
        raise ValueError(f"unknown mutation {name!r} (known: {sorted(KNOWN)})")
    return name


def active(name: str) -> bool:
    """Is the named mutation currently switched on?"""
    return name in _ACTIVE


def active_set() -> tuple[str, ...]:
    """Sorted snapshot of every currently active mutation.

    Part of a run's determinism surface: the sweep cache
    (:mod:`repro.cache`) folds this into every job key so a mutated
    build never reuses outcomes recorded by an unmutated one.
    """
    return tuple(sorted(_ACTIVE))


def activate(name: str) -> None:
    """Switch a mutation on (test-only)."""
    _ACTIVE.add(_check(name))


def deactivate(name: str) -> None:
    """Switch a mutation off."""
    _ACTIVE.discard(_check(name))


@contextmanager
def enabled(name: str) -> Iterator[None]:
    """Scoped activation: guarantees the switch is restored on exit."""
    was = active(_check(name))
    _ACTIVE.add(name)
    try:
        yield
    finally:
        if not was:
            _ACTIVE.discard(name)


def _load_env() -> None:
    """Seed the active set from ``REPRO_MUTATIONS`` (spawned workers)."""
    for name in os.environ.get("REPRO_MUTATIONS", "").split(","):
        name = name.strip()
        if name:
            _ACTIVE.add(_check(name))


_load_env()
