"""Virtual time and the global event queue of the discrete-event core.

Every cause/effect in the simulator — a message delivery, a process
failure, a timer expiring, a detector notification — is an :class:`Event`
on a single priority queue ordered by ``(time, seq)``.  The ``seq``
tie-breaker makes the simulation fully deterministic: two events scheduled
for the same virtual instant always execute in scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback at a virtual time.

    Events compare by ``(time, seq)`` only; the callback itself never
    participates in ordering.
    """

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    #: Diagnostic label shown in traces and deadlock reports.
    label: str = field(compare=False, default="")
    #: Cancelled events stay in the heap but are skipped when popped.
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark this event so it is skipped when it reaches the queue head."""
        self.cancelled = True


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(self, time: float, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule *fn* to run at virtual *time*; returns a cancellable handle."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        ev = Event(time=time, seq=next(self._seq), fn=fn, label=label)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`IndexError` when no live event remains.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float | None:
        """Return the virtual time of the next live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def note_cancelled(self) -> None:
        """Bookkeeping hook: callers that cancel an event call this once."""
        self._live -= 1


class VirtualClock:
    """The global simulation clock.

    The clock only moves forward, driven by event execution.  Individual
    processes additionally keep *local* clocks (see
    :class:`~repro.simmpi.process.SimProcess`) which may run ahead of the
    global clock while a process performs local computation.
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current global virtual time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock to *time*; the clock never runs backwards."""
        if time > self._now:
            self._now = time
