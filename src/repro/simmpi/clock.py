"""Virtual time and the global event queue of the discrete-event core.

Every cause/effect in the simulator — a message delivery, a process
failure, a timer expiring, a detector notification — is an :class:`Event`
on a single priority queue ordered by ``(time, seq)``.  The ``seq``
tie-breaker makes the simulation fully deterministic: two events scheduled
for the same virtual instant always execute in scheduling order.

The heap stores plain ``(time, seq, event)`` tuples rather than rich
comparable objects: tuple comparison is a single C-level operation and
``seq`` is unique, so ordering never falls through to the event itself.
:class:`Event` is a ``__slots__`` handle kept only for cancellation and
diagnostics.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Event:
    """A scheduled callback at a virtual time.

    Events order by ``(time, seq)`` only; the callback itself never
    participates in ordering.  Cancelled events stay in the heap but are
    skipped when popped; :meth:`cancel` is idempotent and does the live
    accounting on its owning queue exactly once.
    """

    __slots__ = ("time", "seq", "fn", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[[], None],
        label: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        #: Diagnostic label shown in traces and deadlock reports.
        self.label = label
        self.cancelled = cancelled
        #: Owning queue while the event is live in it (accounting target);
        #: ``None`` once popped or for free-standing events.
        self._queue: "EventQueue | None" = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        """Mark this event so it is skipped when it reaches the queue head.

        Idempotent, and safe after the event was already popped: the live
        count of the owning queue is decremented exactly once, and only
        while the event is actually still queued.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._live -= 1
            queue.cancelled_total += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, seq={self.seq}, {self.label!r}{flag})"


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_seq", "_live", "cancelled_total")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0
        #: Total events ever cancelled (perf-counter food).
        self.cancelled_total = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(self, time: float, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule *fn* to run at virtual *time*; returns a cancellable handle."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, label)
        ev._queue = self
        heapq.heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`IndexError` when no live event remains.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[2]
            if ev.cancelled:
                continue
            ev._queue = None
            self._live -= 1
            return ev
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float | None:
        """Return the virtual time of the next live event, or ``None``."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def note_cancelled(self) -> None:
        """Backward-compatible no-op.

        :meth:`Event.cancel` now does its own live accounting (exactly
        once, even if cancel is called repeatedly or after the pop), so
        the old call-this-once-per-cancel contract — easy to violate in
        both directions — is gone.  Kept so existing callers still run.
        """


class VirtualClock:
    """The global simulation clock.

    The clock only moves forward, driven by event execution.  Individual
    processes additionally keep *local* clocks (see
    :class:`~repro.simmpi.process.SimProcess`) which may run ahead of the
    global clock while a process performs local computation.
    """

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current global virtual time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock to *time*; the clock never runs backwards."""
        if time > self._now:
            self._now = time
