"""Message envelopes and the per-process matching engine.

MPI matching semantics implemented here:

* A receive matches on ``(source, tag, context)`` with ``ANY_SOURCE`` /
  ``ANY_TAG`` wildcards.
* **Non-overtaking**: two messages sent on the same (source, destination,
  context) channel match posted receives in send order.  The transport
  enforces in-order delivery per channel, and the matching engine selects
  the *oldest* candidate (post order for receives, arrival order for
  unexpected messages), so the combination preserves MPI's rule.
* Messages arriving before a matching receive is posted park in the
  *unexpected queue*; receives posted with no matching arrival park in the
  *posted queue*.

Queues are **indexed by ``(source, tag)``** within each context: the
common non-wildcard receive resolves in one dict lookup instead of a
front-to-back scan, and an arriving message consults at most the four
posted buckets that could accept it (exact, source-wildcard,
tag-wildcard, both-wildcard).  Every queued entry carries a monotone
sequence number — post order for receives, arrival order for messages —
and cross-bucket candidates are decided by the minimum sequence, which
reproduces the old linear scan's earliest-first choice *exactly* (the
scan visited entries in exactly that order).  Within one bucket all
entries match the same criteria, so the head of its FIFO deque is always
the only candidate; per-channel in-order delivery makes that head the
lowest ``msg_id`` too, which is what non-overtaking requires.

The engine is purely mechanical — failure semantics (erroring pending
receives whose peer died) live in the runtime, which owns the failure
knowledge.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .constants import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .request import Request


@dataclass(slots=True)
class Message:
    """One message envelope traveling through the simulated network."""

    src: int
    dst: int
    tag: int
    context: int
    payload: Any
    nbytes: int
    #: Per-simulation send order (assigned by the runtime; deterministic).
    msg_id: int = 0
    #: Sender-local virtual time when the send was posted.
    send_time: float = 0.0
    #: Virtual time the message reaches the destination's queues.
    deliver_time: float = 0.0
    #: Synchronous-send request riding on this message, completed when the
    #: message is matched (or completed in error when it is dropped).
    ssend_req: Any = None

    def matches(self, source: int, tag: int, context: int) -> bool:
        """True if this envelope satisfies a receive's selection criteria."""
        if context != self.context:
            return False
        if source != ANY_SOURCE and source != self.src:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True


class MatchingEngine:
    """Posted-receive and unexpected-message queues for one process.

    Queues are keyed by context id so that traffic on different
    communicators (and on the hidden collective contexts) never
    interferes; within a context they are indexed by ``(source, tag)``
    (see the module docstring for the candidate-selection rule).
    """

    __slots__ = ("rank", "_unexpected", "_posted", "_useq", "_pseq")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        #: context -> (src, tag) -> deque[(arrival_seq, Message)]
        self._unexpected: dict[int, dict[tuple[int, int], deque]] = {}
        #: context -> (peer, tag) -> deque[(post_seq, Request)]
        self._posted: dict[int, dict[tuple[int, int], deque]] = {}
        self._useq = 0  # arrival order of unexpected messages
        self._pseq = 0  # post order of receives

    # -- arrival path -----------------------------------------------------

    def deliver(self, msg: Message) -> "Request | None":
        """Offer an arriving message to the posted queue.

        Returns the matched receive request (not yet completed — the
        runtime completes it so it can stamp times and traces), or ``None``
        if the message was queued as unexpected.
        """
        buckets = self._posted.get(msg.context)
        if buckets:
            src, tag = msg.src, msg.tag
            best_key = None
            best_seq = -1
            for key in (
                (src, tag),
                (src, ANY_TAG),
                (ANY_SOURCE, tag),
                (ANY_SOURCE, ANY_TAG),
            ):
                q = buckets.get(key)
                if q:
                    seq = q[0][0]
                    if best_key is None or seq < best_seq:
                        best_key, best_seq = key, seq
            if best_key is not None:
                q = buckets[best_key]
                req = q.popleft()[1]
                if not q:
                    del buckets[best_key]
                return req
        ubuckets = self._unexpected.setdefault(msg.context, {})
        q = ubuckets.get((msg.src, msg.tag))
        if q is None:
            q = ubuckets[(msg.src, msg.tag)] = deque()
        q.append((self._useq, msg))
        self._useq += 1
        return None

    @staticmethod
    def _recv_accepts(req: "Request", msg: Message) -> bool:
        if req.peer != ANY_SOURCE and req.peer != msg.src:
            return False
        if req.tag != ANY_TAG and req.tag != msg.tag:
            return False
        return True

    # -- post path --------------------------------------------------------

    def _find_unexpected(
        self, context: int, source: int, tag: int
    ) -> tuple[dict, tuple[int, int]] | None:
        """Locate the bucket holding the oldest-arrival matching message.

        Returns ``(buckets, key)`` — the candidate is the head of
        ``buckets[key]`` — or ``None`` when nothing matches.
        """
        buckets = self._unexpected.get(context)
        if not buckets:
            return None
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (source, tag)
            return (buckets, key) if buckets.get(key) else None
        best_key = None
        best_seq = -1
        for key, q in buckets.items():
            if not q:
                continue
            if source != ANY_SOURCE and key[0] != source:
                continue
            if tag != ANY_TAG and key[1] != tag:
                continue
            seq = q[0][0]
            if best_key is None or seq < best_seq:
                best_key, best_seq = key, seq
        return (buckets, best_key) if best_key is not None else None

    def post_recv(self, req: "Request", context: int) -> Message | None:
        """Post a receive; return an already-arrived matching message if any.

        When a message is returned the request is *not* queued; the runtime
        completes it immediately.  Otherwise the request joins the posted
        queue to await future arrivals.
        """
        hit = self._find_unexpected(context, req.peer, req.tag)
        if hit is not None:
            buckets, key = hit
            q = buckets[key]
            msg = q.popleft()[1]
            if not q:
                del buckets[key]
            return msg
        pbuckets = self._posted.setdefault(context, {})
        pkey = (req.peer, req.tag)
        q = pbuckets.get(pkey)
        if q is None:
            q = pbuckets[pkey] = deque()
        q.append((self._pseq, req))
        self._pseq += 1
        return None

    def cancel_recv(self, req: "Request") -> bool:
        """Remove a posted receive; True if it was found (not yet matched)."""
        for buckets in self._posted.values():
            for key, q in buckets.items():
                for i, (_seq, r) in enumerate(q):
                    if r is req:
                        del q[i]
                        if not q:
                            del buckets[key]
                        return True
        return False

    # -- failure sweep support ---------------------------------------------

    def pending_recvs(self) -> list["Request"]:
        """All currently posted (unmatched) receive requests, in post order
        within each context (contexts in first-post order, as before)."""
        out: list[Request] = []
        for buckets in self._posted.values():
            entries = [e for q in buckets.values() for e in q]
            entries.sort(key=lambda e: e[0])
            out.extend(r for _seq, r in entries)
        return out

    def remove_posted(self, req: "Request") -> None:
        """Drop a posted receive that the runtime completed in error."""
        self.cancel_recv(req)

    def unexpected_from(self, src: int, context: int | None = None) -> list[Message]:
        """Unexpected messages from *src* (diagnostics; delivered messages
        from a failed sender remain matchable — fail-stop wire semantics)."""
        out: list[Message] = []
        for ctx, buckets in self._unexpected.items():
            if context is not None and ctx != context:
                continue
            entries = [
                e for key, q in buckets.items() if key[0] == src for e in q
            ]
            entries.sort(key=lambda e: e[0])
            out.extend(m for _seq, m in entries)
        return out

    def probe(self, source: int, tag: int, context: int) -> Message | None:
        """Return (without removing) the oldest-arrival matching unexpected
        message."""
        hit = self._find_unexpected(context, source, tag)
        if hit is None:
            return None
        buckets, key = hit
        return buckets[key][0][1]

    def stats(self) -> dict[str, int]:
        """Queue depths, for runtime diagnostics and tests."""
        return {
            "posted": sum(
                len(q) for b in self._posted.values() for q in b.values()
            ),
            "unexpected": sum(
                len(q) for b in self._unexpected.values() for q in b.values()
            ),
        }
