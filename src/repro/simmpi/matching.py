"""Message envelopes and the per-process matching engine.

MPI matching semantics implemented here:

* A receive matches on ``(source, tag, context)`` with ``ANY_SOURCE`` /
  ``ANY_TAG`` wildcards.
* **Non-overtaking**: two messages sent on the same (source, destination,
  context) channel match posted receives in send order.  The transport
  enforces in-order delivery per channel, and the matching engine scans
  arrival queues front to back, so the combination preserves MPI's rule.
* Messages arriving before a matching receive is posted park in the
  *unexpected queue*; receives posted with no matching arrival park in the
  *posted queue*.

The engine is purely mechanical — failure semantics (erroring pending
receives whose peer died) live in the runtime, which owns the failure
knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .constants import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .request import Request


@dataclass
class Message:
    """One message envelope traveling through the simulated network."""

    src: int
    dst: int
    tag: int
    context: int
    payload: Any
    nbytes: int
    #: Per-simulation send order (assigned by the runtime; deterministic).
    msg_id: int = 0
    #: Sender-local virtual time when the send was posted.
    send_time: float = 0.0
    #: Virtual time the message reaches the destination's queues.
    deliver_time: float = 0.0
    #: Synchronous-send request riding on this message, completed when the
    #: message is matched (or completed in error when it is dropped).
    ssend_req: Any = None

    def matches(self, source: int, tag: int, context: int) -> bool:
        """True if this envelope satisfies a receive's selection criteria."""
        if context != self.context:
            return False
        if source != ANY_SOURCE and source != self.src:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True


class MatchingEngine:
    """Posted-receive and unexpected-message queues for one process.

    Queues are keyed by context id so that traffic on different
    communicators (and on the hidden collective contexts) never interferes.
    """

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._unexpected: dict[int, list[Message]] = {}
        self._posted: dict[int, list["Request"]] = {}

    # -- arrival path -----------------------------------------------------

    def deliver(self, msg: Message) -> "Request | None":
        """Offer an arriving message to the posted queue.

        Returns the matched receive request (not yet completed — the
        runtime completes it so it can stamp times and traces), or ``None``
        if the message was queued as unexpected.
        """
        posted = self._posted.get(msg.context, [])
        for i, req in enumerate(posted):
            if self._recv_accepts(req, msg):
                del posted[i]
                return req
        self._unexpected.setdefault(msg.context, []).append(msg)
        return None

    @staticmethod
    def _recv_accepts(req: "Request", msg: Message) -> bool:
        if req.peer != ANY_SOURCE and req.peer != msg.src:
            return False
        if req.tag != ANY_TAG and req.tag != msg.tag:
            return False
        return True

    # -- post path --------------------------------------------------------

    def post_recv(self, req: "Request", context: int) -> Message | None:
        """Post a receive; return an already-arrived matching message if any.

        When a message is returned the request is *not* queued; the runtime
        completes it immediately.  Otherwise the request joins the posted
        queue to await future arrivals.
        """
        queue = self._unexpected.get(context, [])
        for i, msg in enumerate(queue):
            if self._recv_accepts(req, msg):
                del queue[i]
                return msg
        self._posted.setdefault(context, []).append(req)
        return None

    def cancel_recv(self, req: "Request") -> bool:
        """Remove a posted receive; True if it was found (not yet matched)."""
        for queue in self._posted.values():
            if req in queue:
                queue.remove(req)
                return True
        return False

    # -- failure sweep support ---------------------------------------------

    def pending_recvs(self) -> list["Request"]:
        """All currently posted (unmatched) receive requests."""
        out: list[Request] = []
        for queue in self._posted.values():
            out.extend(queue)
        return out

    def remove_posted(self, req: "Request") -> None:
        """Drop a posted receive that the runtime completed in error."""
        self.cancel_recv(req)

    def unexpected_from(self, src: int, context: int | None = None) -> list[Message]:
        """Unexpected messages from *src* (diagnostics; delivered messages
        from a failed sender remain matchable — fail-stop wire semantics)."""
        out = []
        for ctx, queue in self._unexpected.items():
            if context is not None and ctx != context:
                continue
            out.extend(m for m in queue if m.src == src)
        return out

    def probe(self, source: int, tag: int, context: int) -> Message | None:
        """Return (without removing) the first matching unexpected message."""
        for msg in self._unexpected.get(context, []):
            if msg.matches(source, tag, context):
                return msg
        return None

    def stats(self) -> dict[str, int]:
        """Queue depths, for runtime diagnostics and tests."""
        return {
            "posted": sum(len(q) for q in self._posted.values()),
            "unexpected": sum(len(q) for q in self._unexpected.values()),
        }
