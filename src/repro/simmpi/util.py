"""Small deterministic helpers shared across the simulator."""

from __future__ import annotations

from typing import Any

#: Fixed per-message envelope size added to every payload estimate.
ENVELOPE_BYTES = 32

#: Exact-type sizes for fixed-width scalars (the common ring payloads).
#: ``type(x)`` lookups here mirror the ``isinstance`` chain of
#: :func:`_body_nbytes` exactly for these types (bool before int, etc.).
_FIXED_SCALAR: dict[type, int] = {
    type(None): 0,
    bool: 1,
    int: 8,
    float: 8,
    complex: 16,
}

#: Shape key -> total wire size.  A *shape* captures exactly the parts of
#: a payload that determine its estimated size (see :func:`_shape_token`):
#: the ring re-measures the same ``RingMsg(value=int, marker=int)`` token
#: on every send, and the consensus protocol re-sends the same couple of
#: ``_RoundMsg`` shapes thousands of times per run, so after the first
#: structural walk each repeat is one dict hit.  Sizes are always computed
#: by :func:`_body_nbytes` on a miss, so a cache hit is byte-identical to
#: the walk by construction.
_SHAPE_CACHE: dict[Any, int] = {}
_SHAPE_CACHE_MAX = 1024

#: Container/scalar types that :func:`_body_nbytes` special-cases *before*
#: its dataclass branch; a dataclass subclassing one of these must keep
#: taking that earlier branch, so it is ineligible for the shape cache.
_NON_CACHEABLE_BASES = (
    bool, int, float, complex, str, bytes, bytearray, memoryview,
    list, tuple, set, frozenset, dict,
)

_SIMPLE_CONTAINERS = (tuple, list, set, frozenset)


def _shape_token(v: Any) -> Any:
    """A hashable key fragment that fully determines ``_body_nbytes(v)``.

    Returns ``None`` when no cheap size-determining key exists (nested
    structures, subclasses, objects) — the caller then falls back to the
    structural walk.  Tokens:

    * fixed-width scalar -> its exact type (constant size),
    * ``str`` -> the string itself (size is its UTF-8 length; interned
      protocol tags like ``"round"``/``"decide"`` repeat endlessly),
    * ``bytes``/``bytearray`` -> ``(type, len)``,
    * flat ``tuple``/``list``/``set``/``frozenset`` whose elements are all
      the *same* fixed-width scalar type -> ``(type, elem_type, len)``.
    """
    t = type(v)
    if t in _FIXED_SCALAR:
        return t
    if t is str:
        return v
    if t is bytes or t is bytearray:
        return (t, len(v))
    if t in _SIMPLE_CONTAINERS:
        et = None
        for x in v:
            xt = type(x)
            if xt not in _FIXED_SCALAR:
                return None
            if et is None:
                et = xt
            elif xt is not et:
                return None
        return (t, et, len(v))
    return None


def payload_nbytes(payload: Any) -> int:
    """Deterministically estimate the wire size of a payload in bytes.

    The estimate feeds the cost model only — correctness never depends on
    it.  It intentionally avoids :mod:`pickle` (slow, version-dependent)
    in favour of a simple structural walk; repeated *shapes* (same
    dataclass type, same size-determining field tokens) are memoised
    because the ring and the consensus protocol re-measure identical
    tokens on every send.
    """
    t = type(payload)
    size = _FIXED_SCALAR.get(t)
    if size is not None:
        return ENVELOPE_BYTES + size
    key = None
    fields = getattr(t, "__dataclass_fields__", None)
    if fields is not None:
        if not isinstance(
            getattr(payload, "nbytes", None), int  # an nbytes attr wins the walk
        ) and not isinstance(payload, _NON_CACHEABLE_BASES):
            # Inline _shape_token over the fields: this runs per send on
            # the kernel's hot path, and the common field kinds (fixed
            # scalars, short strings) resolve in one dict/type check.
            toks: list | None = []
            for f in fields:
                v = getattr(payload, f)
                vt = type(v)
                if vt in _FIXED_SCALAR:
                    toks.append(vt)
                    continue
                tok = v if vt is str else _shape_token(v)
                if tok is None:
                    toks = None
                    break
                toks.append(tok)
            if toks is not None:
                key = (t, tuple(toks))
    else:
        # Non-dataclass payloads: flat strings/bytes/scalar containers
        # also have cheap size-determining keys.
        key = _shape_token(payload)
    if key is not None:
        size = _SHAPE_CACHE.get(key)
        if size is None:
            size = ENVELOPE_BYTES + _body_nbytes(payload)
            if len(_SHAPE_CACHE) >= _SHAPE_CACHE_MAX:
                _SHAPE_CACHE.clear()
            _SHAPE_CACHE[key] = size
        return size
    return ENVELOPE_BYTES + _body_nbytes(payload)


def _body_nbytes(obj: Any) -> int:
    if obj is None:
        return 0
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, complex):
        return 16
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    nbytes = getattr(obj, "nbytes", None)  # numpy arrays and friends
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(_body_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(_body_nbytes(k) + _body_nbytes(v) for k, v in obj.items())
    fields = getattr(obj, "__dataclass_fields__", None)
    if fields is not None:
        return 8 + sum(_body_nbytes(getattr(obj, f)) for f in fields)
    slots = getattr(obj, "__slots__", None)
    if slots is not None:
        return 8 + sum(_body_nbytes(getattr(obj, s, None)) for s in slots)
    d = getattr(obj, "__dict__", None)
    if isinstance(d, dict):
        return 8 + sum(_body_nbytes(v) for v in d.values())
    return 64  # opaque object: flat guess
