"""Small deterministic helpers shared across the simulator."""

from __future__ import annotations

from typing import Any

#: Fixed per-message envelope size added to every payload estimate.
ENVELOPE_BYTES = 32


def payload_nbytes(payload: Any) -> int:
    """Deterministically estimate the wire size of a payload in bytes.

    The estimate feeds the cost model only — correctness never depends on
    it.  It intentionally avoids :mod:`pickle` (slow, version-dependent)
    in favour of a simple structural walk.
    """
    return ENVELOPE_BYTES + _body_nbytes(payload)


def _body_nbytes(obj: Any) -> int:
    if obj is None:
        return 0
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, complex):
        return 16
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    nbytes = getattr(obj, "nbytes", None)  # numpy arrays and friends
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(_body_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(_body_nbytes(k) + _body_nbytes(v) for k, v in obj.items())
    fields = getattr(obj, "__dataclass_fields__", None)
    if fields is not None:
        return 8 + sum(_body_nbytes(getattr(obj, f)) for f in fields)
    slots = getattr(obj, "__slots__", None)
    if slots is not None:
        return 8 + sum(_body_nbytes(getattr(obj, s, None)) for s in slots)
    d = getattr(obj, "__dict__", None)
    if isinstance(d, dict):
        return 8 + sum(_body_nbytes(v) for v in d.values())
    return 64  # opaque object: flat guess
