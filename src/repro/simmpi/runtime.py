"""The simulation kernel: event loop, transport, failures, detection.

:class:`Runtime` wires every substrate piece together:

* runs the deterministic scheduler loop (runnable fibers first, then the
  earliest event; **deadlock is detected** when neither exists but alive
  processes remain blocked — the simulator's proof of a hang);
* implements the transport (send posting, per-channel in-order delivery,
  matching, receive completion) on the LogGP cost model;
* implements **fail-stop failures**: a killed process unwinds immediately
  and never communicates again; messages already injected into the network
  still arrive (wire semantics — the paper's Fig. 8 duplicate scenario
  depends on this);
* implements the **perfect failure detector**: every failure becomes known
  to every surviving observer after a per-observer detection latency, at
  which point the observer's pending receives involving the dead rank
  complete with ``MPI_ERR_RANK_FAIL_STOP`` and failure listeners (the
  consensus engine) are notified.

:class:`Simulation` is the user-facing facade; see its docstring for the
typical driver loop.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..perf import SESSION, PerfCounters
from .clock import EventQueue, VirtualClock
from .communicator import Comm
from .constants import ANY_SOURCE
from .costmodel import DEFAULT_COST, CostModel
from .errors import (
    ErrorClass,
    JobAborted,
    ProcessKilled,
    SimShutdown,
    SimulationDeadlock,
    SimulationError,
)
from .fibers import FiberState, make_fiber, resolve_backend
from .matching import Message
from .process import SimProcess
from .request import Request, Status
from .scheduler import SchedulingPolicy, make_policy
from .trace import Trace, TraceKind
from .util import payload_nbytes


class SimulationLimitExceeded(Exception):
    """The event or virtual-time budget was exhausted (runaway guard)."""


#: Type of a failure listener: ``fn(observer_rank, failed_world_rank, time)``.
FailureListener = Callable[[int, int, float], None]

#: Type of an active-message handler: ``fn(msg, time)``.
AMHandler = Callable[[Message, float], None]


class Runtime:
    """Internal simulation kernel (use :class:`Simulation` to drive it)."""

    def __init__(
        self,
        nprocs: int,
        *,
        cost: CostModel = DEFAULT_COST,
        policy: str | SchedulingPolicy = "rr",
        seed: int = 0,
        detection_latency: float | Callable[[int, int], float] = 0.0,
        trace_enabled: bool = True,
        trace_cap: int | None = None,
        metrics: bool = False,
        fibers: str | None = None,
        max_events: int = 20_000_000,
        max_time: float = float("inf"),
    ) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.cost = cost
        self.seed = seed
        self.policy = make_policy(policy, seed)
        self.policy.reset()
        #: Resolved fiber backend name ("thread" / "greenlet"): explicit
        #: ``fibers`` argument, else $REPRO_FIBERS, else auto (greenlet
        #: when importable).  Traces are byte-identical across backends;
        #: only handoff wall time changes.
        self.fiber_backend = resolve_backend(fibers)
        self.clock = VirtualClock()
        self.events = EventQueue()
        self.trace = Trace(enabled=trace_enabled, cap=trace_cap)
        self.perf = PerfCounters()
        self.perf.fibers = self.fiber_backend
        #: Kernel metrics accumulator (``repro.obs``), or ``None``.  Every
        #: hot-path hook is guarded with ``if obs is not None:`` so a run
        #: without ``metrics=True`` allocates no obs state and pays one
        #: attribute read per guard — the trace's zero-cost discipline.
        self.obs: Any = None
        if metrics:
            from ..obs.metrics import KernelMetrics  # lazy: avoids a cycle

            self.obs = KernelMetrics(nprocs)
        self.max_events = max_events
        self.max_time = max_time
        self._detection_latency = detection_latency
        self.procs: list[SimProcess] = [SimProcess(self, r) for r in range(nprocs)]
        self._ready: deque[SimProcess] = deque()
        #: Ground-truth failed world ranks.
        self.failed: set[int] = set()
        #: Per-observer knowledge: observer world rank -> known failed set.
        self.known_by: dict[int, set[int]] = {r: set() for r in range(nprocs)}
        self._failure_listeners: dict[int, list[FailureListener]] = {}
        self._am_handlers: dict[tuple[int, int], AMHandler] = {}
        self._channel_last: dict[tuple[int, int, int], float] = {}
        #: Pending synchronous-send requests, keyed by owner rank, so the
        #: detector sweep can fail them when their destination dies.
        self._pending_ssends: dict[int, list[Request]] = {}
        self._cid_registry: dict[tuple[int, int, Any], int] = {}
        self._next_cid = 1  # cid 0 is COMM_WORLD
        #: Per-observer revocation knowledge: (observer rank, cid) present
        #: means the observer has learned that the communicator was
        #: revoked (ULFM).  Like failure knowledge, revocation spreads
        #: with message latency — members learn at notice delivery time.
        self._revoked: set[tuple[int, int]] = set()
        self.abort_info: JobAborted | None = None
        self.deadlock: SimulationDeadlock | None = None
        self.injectors: list[Any] = []
        self._poll_dt = max(cost.overhead, 1e-9)
        self._msg_seq = 0
        self._req_seq = 0
        world = tuple(range(nprocs))
        for p in self.procs:
            p.comm_world = Comm(p, 0, world, name="world")

    # ------------------------------------------------------------------
    # Scheduling plumbing
    # ------------------------------------------------------------------

    def next_request_id(self) -> int:
        """Allocate a per-simulation request id (deterministic)."""
        self._req_seq += 1
        return self._req_seq

    def next_message_id(self) -> int:
        """Allocate a per-simulation message id (deterministic)."""
        self._msg_seq += 1
        return self._msg_seq

    def enqueue_ready(self, proc: SimProcess) -> None:
        """Add a newly-runnable process to the ready queue."""
        self._ready.append(proc)

    def schedule(self, time: float, fn: Callable[[], None], label: str = "") -> None:
        """Schedule a raw event (runtime-internal)."""
        self.events.schedule(time, fn, label)

    def schedule_wake(self, proc: SimProcess, time: float, label: str) -> None:
        """Schedule *proc* to wake at virtual *time*."""
        self.events.schedule(time, lambda: proc.wake(time, label), f"wake:{label}")

    def poll_block(self, proc: SimProcess, label: str) -> None:
        """Block *proc* for one poll interval (non-blocking-call progress)."""
        deadline = proc.now + self._poll_dt
        self.schedule_wake(proc, deadline, label)
        while proc.now < deadline:
            proc.block(f"poll:{label}")

    def arrival_block(self, proc: SimProcess, label: str) -> None:
        """Block *proc* until the next message delivery addressed to it.

        Used by blocking probe: event-driven, so waiting across a long
        idle gap costs one event instead of millions of polls.
        """
        proc.wants_arrival_wake = True
        proc.block(f"await-arrival:{label}")
        proc.wants_arrival_wake = False

    # ------------------------------------------------------------------
    # Failure knowledge
    # ------------------------------------------------------------------

    def is_known_failed(self, observer: int, world_rank: int) -> bool:
        """Does *observer* currently know that *world_rank* failed?"""
        return world_rank in self.known_by[observer]

    def known_failed_set(self, observer: int) -> frozenset[int]:
        """The set of world ranks *observer* knows to have failed."""
        return frozenset(self.known_by[observer])

    def add_failure_listener(self, observer: int, fn: FailureListener) -> None:
        """Notify *fn* whenever *observer* learns of a failure."""
        self._failure_listeners.setdefault(observer, []).append(fn)

    def detection_delay(self, observer: int, failed: int) -> float:
        if callable(self._detection_latency):
            return float(self._detection_latency(observer, failed))
        return float(self._detection_latency)

    # ------------------------------------------------------------------
    # Fail-stop machinery
    # ------------------------------------------------------------------

    def kill_now(self, proc: SimProcess) -> None:
        """Fail-stop *proc* at its current local time, from its own thread.

        Used by fault injectors at MPI-call and probe-point windows.
        Raises :class:`ProcessKilled` (never returns normally).
        """
        self._mark_failed(proc, proc.now)
        raise ProcessKilled()

    def kill_at(self, rank: int, time: float) -> None:
        """Schedule a fail-stop of *rank* at virtual *time* (event path)."""
        self.events.schedule(time, lambda: self._kill_event(rank, time),
                             f"kill:r{rank}")

    def _kill_event(self, rank: int, time: float) -> None:
        proc = self.procs[rank]
        if not proc.alive():
            return
        if proc.fiber is not None and proc.fiber.finished():
            return  # the process already exited; nothing left to kill
        self._mark_failed(proc, time)
        fiber = proc.fiber
        assert fiber is not None
        if fiber.state is FiberState.BLOCKED:
            # Unwind the thread now so it never runs application code again.
            fiber.kill_pending = True
            fiber.resume_and_wait()
        elif fiber.state in (FiberState.READY, FiberState.NEW):
            fiber.kill_pending = True  # unwinds when next scheduled
        # RUNNING is impossible: events execute only between fiber slices.

    def _mark_failed(self, proc: SimProcess, time: float) -> None:
        proc.failed_at = time
        self.failed.add(proc.rank)
        self.trace.record(time, TraceKind.FAILURE, proc.rank)
        for observer in range(self.nprocs):
            if observer == proc.rank:
                continue
            delay = self.detection_delay(observer, proc.rank)
            when = time + delay
            self.events.schedule(
                when,
                lambda o=observer, f=proc.rank, w=when: self._detect_event(o, f, w),
                f"detect:r{proc.rank}@r{observer}",
            )

    def _detect_event(self, observer: int, failed: int, time: float) -> None:
        obs = self.procs[observer]
        if not obs.alive():
            return
        if failed in self.known_by[observer]:
            return
        self.known_by[observer].add(failed)
        self.trace.record(time, TraceKind.DETECT, observer, failed=failed)
        if obs.wants_arrival_wake:
            # A blocking probe must re-check its source against the new
            # failure knowledge (it may need to raise FAIL_STOP).
            obs.wants_arrival_wake = False
            obs.wake(time, "failure detected while probing")
        self._sweep_pending(obs, failed, time)
        for fn in self._failure_listeners.get(observer, []):
            fn(observer, failed, time)

    def _sweep_pending(self, obs: SimProcess, failed: int, time: float) -> None:
        """Error the observer's pending operations that involve *failed*.

        This implements the paper's "all posted receive operations
        involving that peer will return an error in the class
        ``MPI_ERR_RANK_FAIL_STOP``" — the watchdog-Irecv mechanism.
        """
        for req in list(self._pending_ssends.get(obs.rank, [])):
            if req.peer == failed and not req.done:
                self.trace.record(
                    time, TraceKind.REQ_ERROR, obs.rank,
                    req=req.id, peer=failed, reqkind="ssend",
                )
                req.complete(
                    time,
                    error=ErrorClass.ERR_RANK_FAIL_STOP,
                    status=Status(source=failed, tag=req.tag,
                                  error=ErrorClass.ERR_RANK_FAIL_STOP),
                )
        from .communicator import CONTEXTS_PER_COMM, CTX_COLL

        for req in list(obs.engine.pending_recvs()):
            hit = False
            if req.peer == failed:
                hit = True
            elif req.peer == ANY_SOURCE and req.comm is not None:
                cr = req.comm.comm_rank_of_world(failed)
                if cr is not None and cr not in req.comm.recognized:
                    hit = True
            elif (
                req.comm is not None
                and req.context is not None
                and req.context % CONTEXTS_PER_COMM == CTX_COLL
                and req.comm.comm_rank_of_world(failed) is not None
            ):
                # RTS rule: once any member of the communicator fails,
                # *all* collective operations return an error until the
                # collective validate — including receives inside a
                # collective that are addressed to still-alive peers
                # (those peers may have already abandoned the collective).
                hit = True
            if hit:
                obs.engine.remove_posted(req)
                src = req.peer if req.peer != ANY_SOURCE else failed
                self.trace.record(
                    time, TraceKind.REQ_ERROR, obs.rank,
                    req=req.id, peer=failed, reqkind=req.kind.value,
                )
                req.complete(
                    time,
                    error=ErrorClass.ERR_RANK_FAIL_STOP,
                    status=Status(source=src, tag=req.tag,
                                  error=ErrorClass.ERR_RANK_FAIL_STOP),
                )

    # ------------------------------------------------------------------
    # Revocation (ULFM ``MPI_Comm_revoke``)
    # ------------------------------------------------------------------

    def is_revoked(self, observer: int, cid: int) -> bool:
        """Has *observer* learned that communicator *cid* was revoked?"""
        return (observer, cid) in self._revoked

    def revoke_comm(self, proc: SimProcess, comm: Comm) -> None:
        """Revoke *comm* on behalf of *proc* and notify the other members.

        Revocation is local-immediate at the caller and propagates to the
        remaining members as control messages (one per member, paid for
        by the caller like any eager send).  On arrival the member's
        pending receives on the communicator's contexts complete with
        ``MPI_ERR_REVOKED`` — the interrupt that kicks every rank out of
        a broken communication pattern so they can converge on shrink.
        """
        if (proc.rank, comm.cid) in self._revoked:
            return
        self._revoke_event(proc.rank, comm.cid, proc.now)
        for world_rank in comm.group:
            if world_rank == proc.rank or world_rank in self.known_by[proc.rank]:
                continue
            proc.now += self.cost.overhead
            deliver = proc.now + self.cost.transit_time(proc.rank, world_rank, 1)
            self.perf.messages_sent += 1
            self.events.schedule(
                deliver,
                lambda r=world_rank, c=comm.cid, t=deliver: self._revoke_event(r, c, t),
                f"revoke:c{comm.cid}@r{world_rank}",
            )

    def _revoke_event(self, rank: int, cid: int, time: float) -> None:
        """A revocation notice for *cid* takes effect at *rank*."""
        if (rank, cid) in self._revoked:
            return
        proc = self.procs[rank]
        if not proc.alive():
            return
        self._revoked.add((rank, cid))
        self.trace.record(time, TraceKind.REVOKE, rank, cid=cid)
        from .communicator import CONTEXTS_PER_COMM, CTX_AM

        lo = cid * CONTEXTS_PER_COMM
        am_ctx = lo + CTX_AM
        for req in list(proc.engine.pending_recvs()):
            ctx = req.context
            # The AM context keeps working: consensus (validate / agree)
            # must still run on a revoked communicator to reach shrink.
            if ctx is None or not lo <= ctx < lo + CONTEXTS_PER_COMM:
                continue
            if ctx == am_ctx:
                continue
            proc.engine.remove_posted(req)
            self.trace.record(
                time, TraceKind.REQ_ERROR, rank,
                req=req.id, cid=cid, reqkind=req.kind.value,
            )
            req.complete(
                time,
                error=ErrorClass.ERR_REVOKED,
                status=Status(source=req.peer, tag=req.tag,
                              error=ErrorClass.ERR_REVOKED),
            )
        if proc.wants_arrival_wake:
            proc.wants_arrival_wake = False
            proc.wake(time, "communicator revoked while probing")

    # ------------------------------------------------------------------
    # Fault injection hooks
    # ------------------------------------------------------------------

    def track_peer_request(self, owner_rank: int, req: Request) -> None:
        """Register a request that must error if its ``peer`` rank dies.

        Used by synchronous sends and RMA operations: their completion
        depends on the remote side, so the detector sweep fails them with
        ``MPI_ERR_RANK_FAIL_STOP`` when the peer is reported dead.
        """
        pending = self._pending_ssends.setdefault(owner_rank, [])
        pending.append(req)
        req.on_complete(
            lambda r, lst=pending: lst.remove(r) if r in lst else None
        )

    def check_injection(
        self, proc: SimProcess, op: str | None = None, probe: str | None = None
    ) -> None:
        """Consult every armed injector at an MPI-call or probe window."""
        if not self.injectors or not proc.alive():
            return
        for inj in self.injectors:
            if inj.should_kill(proc, op=op, probe=probe):
                self.kill_now(proc)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def post_send(
        self,
        proc: SimProcess,
        *,
        dst_world: int,
        tag: int,
        context: int,
        payload: Any,
        nbytes: int | None = None,
        ssend_req: Request | None = None,
    ) -> None:
        """Inject one message into the network from *proc* (eager send)."""
        size = payload_nbytes(payload) if nbytes is None else nbytes
        proc.now += self.cost.send_overhead(proc.rank, dst_world, size)
        deliver = proc.now + self.cost.transit_time(proc.rank, dst_world, size)
        key = (proc.rank, dst_world, context)
        prev = self._channel_last.get(key, -1.0)
        deliver = max(deliver, prev)  # per-channel in-order delivery
        self._channel_last[key] = deliver
        msg = Message(
            src=proc.rank,
            dst=dst_world,
            tag=tag,
            context=context,
            payload=payload,
            nbytes=size,
            msg_id=self.next_message_id(),
            send_time=proc.now,
            deliver_time=deliver,
        )
        msg.ssend_req = ssend_req
        if ssend_req is not None:
            self.track_peer_request(proc.rank, ssend_req)
        self.perf.messages_sent += 1
        if self.obs is not None:
            self.obs.message_posted(proc.now)
        if self.trace.enabled:
            self.trace.record(
                proc.now, TraceKind.SEND_POST, proc.rank,
                dst=dst_world, tag=tag, ctx=context, bytes=size, msg=msg.msg_id,
            )
        self.events.schedule(deliver, lambda: self._deliver(msg), f"deliver:{msg.msg_id}")

    def _deliver(self, msg: Message) -> None:
        dst = self.procs[msg.dst]
        perf = self.perf
        obs = self.obs
        if obs is not None:
            obs.message_done(msg.deliver_time)
        if not dst.alive():
            perf.messages_dropped += 1
            if self.trace.enabled:
                self.trace.record(
                    msg.deliver_time, TraceKind.SEND_DROP, msg.src,
                    dst=msg.dst, tag=msg.tag, msg=msg.msg_id,
                )
            self._complete_ssend(msg, msg.deliver_time, dropped=True)
            return
        perf.deliveries += 1
        if self.trace.enabled:
            self.trace.record(
                msg.deliver_time, TraceKind.DELIVER, msg.dst,
                src=msg.src, tag=msg.tag, ctx=msg.context, msg=msg.msg_id,
            )
        handler = self._am_handlers.get((msg.dst, msg.context))
        if handler is not None:
            handler(msg, msg.deliver_time)
            return
        req = dst.engine.deliver(msg)
        if req is not None:
            perf.messages_matched += 1
            self._complete_recv(req, msg, msg.deliver_time)
        else:
            perf.messages_unexpected += 1
            if dst.wants_arrival_wake:
                dst.wants_arrival_wake = False
                dst.wake(msg.deliver_time, "message arrival")
        if obs is not None:
            st = dst.engine.stats()
            obs.queue_sample(
                msg.dst, msg.deliver_time, st["posted"], st["unexpected"]
            )

    def post_recv(self, comm: Comm, req: Request, context: int | None = None) -> None:
        """Post a receive request on *comm* (or an explicit context)."""
        ctx = comm.context() if context is None else context
        req.context = ctx
        proc = req.owner
        if self.trace.enabled:
            self.trace.record(
                proc.now, TraceKind.RECV_POST, proc.rank,
                src=req.peer, tag=req.tag, ctx=ctx, req=req.id,
            )
        msg = proc.engine.post_recv(req, ctx)
        if msg is not None:
            self.perf.messages_matched += 1
            self._complete_recv(req, msg, max(proc.now, msg.deliver_time))
        if self.obs is not None:
            st = proc.engine.stats()
            self.obs.queue_sample(
                proc.rank, proc.now, st["posted"], st["unexpected"]
            )

    def _complete_recv(self, req: Request, msg: Message, time: float) -> None:
        t = time + self.cost.recv_overhead(msg.src, msg.dst, msg.nbytes)
        source = msg.src
        if req.comm is not None:
            cr = req.comm.comm_rank_of_world(msg.src)
            if cr is not None:
                source = cr
        if self.trace.enabled:
            self.trace.record(
                t, TraceKind.RECV_COMPLETE, msg.dst,
                src=msg.src, tag=msg.tag, req=req.id, msg=msg.msg_id,
            )
        req.complete(
            t,
            data=msg.payload,
            status=Status(source=source, tag=msg.tag, count=msg.nbytes),
        )
        self._complete_ssend(msg, t, dropped=False)

    def _complete_ssend(self, msg: Message, time: float, dropped: bool) -> None:
        sreq: Request | None = msg.ssend_req
        if sreq is None or sreq.done:
            return
        if dropped:
            sreq.complete(time, error=ErrorClass.ERR_RANK_FAIL_STOP,
                          status=Status(source=msg.dst, tag=msg.tag,
                                        error=ErrorClass.ERR_RANK_FAIL_STOP))
        else:
            sreq.complete(time, status=Status(source=msg.dst, tag=msg.tag,
                                              count=msg.nbytes))

    def cancel_request(self, req: Request) -> None:
        """Cancel a pending posted receive (MPI_Cancel semantics)."""
        if req.done:
            return
        if req.owner.engine.cancel_recv(req):
            req.complete(req.owner.now, status=Status(cancelled=True))

    # ------------------------------------------------------------------
    # Active-message layer (consensus protocol transport)
    # ------------------------------------------------------------------

    def register_am_handler(self, rank: int, context: int, fn: AMHandler) -> None:
        """Route deliveries on (rank, context) to *fn* instead of matching."""
        self._am_handlers[(rank, context)] = fn

    def send_am(
        self, src_rank: int, dst_world: int, context: int, payload: Any
    ) -> None:
        """Send an active message *on behalf of* ``src_rank``.

        Unlike :meth:`post_send` this may be called from event context (the
        AM handler of another delivery); the sender's local clock is not
        advanced — the progress engine, not the application, pays the cost.
        """
        src = self.procs[src_rank]
        if not src.alive():
            return
        size = payload_nbytes(payload)
        t0 = max(src.now, self.clock.now)
        deliver = t0 + self.cost.overhead + self.cost.transit_time(src_rank, dst_world, size)
        key = (src_rank, dst_world, context)
        deliver = max(deliver, self._channel_last.get(key, -1.0))
        self._channel_last[key] = deliver
        msg = Message(
            src=src_rank, dst=dst_world, tag=0, context=context,
            payload=payload, nbytes=size, msg_id=self.next_message_id(),
            send_time=t0, deliver_time=deliver,
        )
        self.perf.messages_sent += 1
        if self.obs is not None:
            self.obs.message_posted(t0)
        if self.trace.enabled:
            self.trace.record(
                t0, TraceKind.SEND_POST, src_rank,
                dst=dst_world, tag=0, ctx=context, bytes=size, msg=msg.msg_id,
                am=True,
            )
        self.events.schedule(deliver, lambda: self._deliver(msg), f"am:{msg.msg_id}")

    # ------------------------------------------------------------------
    # Communicator ids
    # ------------------------------------------------------------------

    def cid_for(self, parent_cid: int, op_index: int, color: Any = None) -> int:
        """Deterministically allocate/lookup a context id for a comm-creation
        operation: every member passes the same (parent, op_index, color)
        and receives the same cid."""
        key = (parent_cid, op_index, color)
        cid = self._cid_registry.get(key)
        if cid is None:
            cid = self._next_cid
            self._next_cid += 1
            self._cid_registry[key] = cid
        return cid

    # ------------------------------------------------------------------
    # Abort
    # ------------------------------------------------------------------

    def trigger_abort(self, info: JobAborted) -> None:
        """Record an ``MPI_Abort`` and unwind the calling fiber."""
        if self.abort_info is None:
            self.abort_info = info
        raise SimShutdown()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def attach_and_start(self, mains: Sequence[Callable[[SimProcess], Any]]) -> None:
        """Create and launch one fiber per rank around the given mains.

        Fibers come from the active backend (:attr:`fiber_backend`): OS
        threads with a baton handoff, or greenlets with single-threaded
        zero-lock switches — same lifecycle either way.
        """
        for proc, main in zip(self.procs, mains):
            fiber = make_fiber(
                self.fiber_backend,
                name=f"rank-{proc.rank}",
                index=proc.rank,
                target=(lambda m=main, p=proc: m(p)),
            )
            proc.attach_fiber(fiber)
            fiber.start()
        for proc in self.procs:
            self._ready.append(proc)

    def loop(self) -> None:
        """Run until every process finished, the job aborted, a deadlock is
        proven, or a budget is exhausted."""
        for inj in self.injectors:
            inj.arm(self)
        perf = self.perf
        policy = self.policy
        ready = self._ready
        events = self.events
        obs = self.obs
        t0 = _time.perf_counter()
        try:
            while True:
                if self.abort_info is not None:
                    break
                # Ask the policy, not the raw queue: a policy may hold
                # runnable fibers in its own ordered structure between picks.
                if policy.has_ready(ready):  # type: ignore[arg-type]
                    proc = policy.pick(ready)  # type: ignore[arg-type]
                    fiber = proc.fiber
                    assert fiber is not None
                    if fiber.finished():
                        continue
                    perf.handoffs += 1
                    fiber.resume_and_wait()
                    continue
                if events:
                    ev = events.pop()
                    perf.events_executed += 1
                    if obs is not None:
                        obs.event_executed(ev.time, len(events))
                    if perf.events_executed > self.max_events:
                        raise SimulationLimitExceeded(
                            f"exceeded max_events={self.max_events}"
                        )
                    if ev.time > self.max_time:
                        raise SimulationLimitExceeded(
                            f"virtual time {ev.time} exceeded max_time={self.max_time}"
                        )
                    self.clock.advance_to(ev.time)
                    ev.fn()
                    continue
                blocked = [
                    p for p in self.procs
                    if p.alive() and p.fiber is not None
                    and p.fiber.state is FiberState.BLOCKED
                ]
                if blocked:
                    desc = "; ".join(
                        f"rank {p.rank}: {p.wait_description()}" for p in blocked
                    )
                    self.deadlock = SimulationDeadlock(
                        f"deadlock at t={self.clock.now:.9f}: {desc}",
                        [(p.rank, p.wait_description()) for p in blocked],
                    )
                    for p in blocked:
                        self.trace.record(self.clock.now, TraceKind.DEADLOCK,
                                          p.rank, waiting=p.wait_description())
                    break
                break  # all processes done/failed and no events remain
        finally:
            perf.wall_s += _time.perf_counter() - t0
            perf.events_cancelled = events.cancelled_total

    def shutdown(self) -> None:
        """Unwind every still-parked fiber and release it.

        Runs on **every** exit path of :meth:`Simulation.run` (normal
        completion, deadlock/abort returns, budget overruns, application
        errors), so batch drivers — a 10k-run in-process sweep — never
        accumulate fiber state (pooled threads or live greenlet stacks)
        across simulations.  After joining, each fiber's reference to the
        application main is dropped so a kept ``Simulation`` object
        cannot pin per-run application state alive.
        """
        for proc in self.procs:
            fiber = proc.fiber
            if fiber is None or fiber.finished():
                continue
            fiber.shutdown_pending = True
            fiber.resume_and_wait()
        for proc in self.procs:
            if proc.fiber is not None:
                proc.fiber.join()
                proc.fiber.release()


@dataclass
class RankOutcome:
    """Terminal state of one rank after a simulation."""

    rank: int
    #: "done", "failed" (fail-stop), "error" (app exception), "shutdown".
    state: str
    #: Return value of the rank's main function, if it completed.
    value: Any = None
    #: The application exception, if state == "error".
    error: BaseException | None = None
    #: Local virtual clock at the end.
    final_time: float = 0.0


@dataclass
class SimulationResult:
    """Everything a driver can observe about a finished simulation."""

    outcomes: list[RankOutcome]
    final_time: float
    trace: Trace
    aborted: JobAborted | None = None
    deadlock: SimulationDeadlock | None = None
    events_executed: int = 0
    #: Ground-truth failed ranks at the end of the run.
    failed_ranks: frozenset[int] = frozenset()
    #: Kernel performance counters for this run (handoffs, events,
    #: matches, wall seconds, active fiber backend); see
    #: :class:`repro.perf.PerfCounters`.
    perf: PerfCounters | None = None
    #: Kernel metric timelines (:class:`repro.obs.metrics.KernelMetrics`)
    #: when the simulation was built with ``metrics=True``; else ``None``.
    metrics: Any = None

    def value(self, rank: int) -> Any:
        """Return value of *rank*'s main (raises if it did not complete)."""
        out = self.outcomes[rank]
        if out.state != "done":
            raise RuntimeError(f"rank {rank} did not complete: {out.state}")
        return out.value

    def values(self) -> dict[int, Any]:
        """Return values of every rank that completed normally."""
        return {o.rank: o.value for o in self.outcomes if o.state == "done"}

    @property
    def hung(self) -> bool:
        """True if the run ended in a proven deadlock (a hang)."""
        return self.deadlock is not None

    @property
    def completed_ranks(self) -> list[int]:
        return [o.rank for o in self.outcomes if o.state == "done"]


class Simulation:
    """User-facing driver for one simulated MPI job.

    Typical use::

        def main(mpi):
            comm = mpi.comm_world
            ...

        sim = Simulation(nprocs=4, seed=1)
        sim.kill(rank=2, at_time=5e-6)
        result = sim.run(main)

    ``run`` may be given a single main (SPMD) or one main per rank.

    ``fibers`` selects the fiber backend (``"thread"``, ``"greenlet"``,
    ``"auto"``); ``None`` defers to ``$REPRO_FIBERS``, then auto.  The
    backend changes only how fast handoffs are — traces, digests, and
    reports are byte-identical across backends.
    """

    def __init__(
        self,
        nprocs: int,
        *,
        seed: int = 0,
        cost: CostModel = DEFAULT_COST,
        policy: str | SchedulingPolicy = "rr",
        detection_latency: float | Callable[[int, int], float] = 0.0,
        trace_enabled: bool = True,
        trace_cap: int | None = None,
        metrics: bool = False,
        fibers: str | None = None,
        max_events: int = 20_000_000,
        max_time: float = float("inf"),
    ) -> None:
        self.runtime = Runtime(
            nprocs,
            cost=cost,
            policy=policy,
            seed=seed,
            detection_latency=detection_latency,
            trace_enabled=trace_enabled,
            trace_cap=trace_cap,
            metrics=metrics,
            fibers=fibers,
            max_events=max_events,
            max_time=max_time,
        )
        self._ran = False

    @property
    def nprocs(self) -> int:
        return self.runtime.nprocs

    def kill(self, rank: int, at_time: float) -> None:
        """Schedule a fail-stop of *rank* at a virtual time."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range")
        self.runtime.kill_at(rank, at_time)

    def configure(
        self,
        *,
        policy: str | SchedulingPolicy | None = None,
        policy_seed: int | None = None,
        cost: CostModel | None = None,
    ) -> "Simulation":
        """Re-plumb the scheduling policy and/or cost model before the run.

        This is the fuzzer's hook: a scenario factory builds its
        ``(Simulation, main)`` pair with the workload's defaults, and the
        perturbation layer then swaps in a seeded policy and a jittered
        cost model without the factory having to know about either.
        Returns ``self`` (chainable).  Must be called before :meth:`run`.
        """
        if self._ran:
            raise RuntimeError("cannot configure a Simulation after run()")
        rt = self.runtime
        if policy is not None:
            seed = rt.seed if policy_seed is None else policy_seed
            rt.policy = make_policy(policy, seed)
            rt.policy.reset()
        if cost is not None:
            rt.cost = cost
            rt._poll_dt = max(cost.overhead, 1e-9)
        return self

    def add_injector(self, injector: Any) -> None:
        """Attach a fault injector (see :mod:`repro.faults`)."""
        self.runtime.injectors.append(injector)

    def run(
        self,
        main: Callable[[SimProcess], Any] | Sequence[Callable[[SimProcess], Any]],
        *,
        on_deadlock: str = "raise",
        raise_app_errors: bool = True,
    ) -> SimulationResult:
        """Execute the job to completion and return the result.

        Parameters
        ----------
        main:
            One callable (run at every rank) or a sequence of ``nprocs``
            callables (MPMD).
        on_deadlock:
            ``"raise"`` (default) raises :class:`SimulationDeadlock`;
            ``"return"`` records it on the result — used by the harness
            that *wants* to observe the paper's Fig. 6 hang.
        raise_app_errors:
            Re-raise the first unexpected application exception as
            :class:`SimulationError`; pass ``False`` to inspect them on
            the result instead.
        """
        if self._ran:
            raise RuntimeError("a Simulation object can only run once")
        self._ran = True
        if on_deadlock not in ("raise", "return"):
            raise ValueError("on_deadlock must be 'raise' or 'return'")
        rt = self.runtime
        mains: list[Callable[[SimProcess], Any]]
        if callable(main):
            mains = [main] * rt.nprocs
        else:
            mains = list(main)
            if len(mains) != rt.nprocs:
                raise ValueError(
                    f"expected {rt.nprocs} mains, got {len(mains)}"
                )
        rt.attach_and_start(mains)
        try:
            rt.loop()
        finally:
            rt.shutdown()
            # Fold this run's counters into the process-wide session
            # accumulator (the bench harness snapshots deltas around it).
            SESSION.add(rt.perf)
        outcomes = []
        for proc in rt.procs:
            fiber = proc.fiber
            assert fiber is not None
            if proc.failed_at is not None:
                state = "failed"
            elif fiber.error is not None:
                state = "error"
            elif rt.abort_info is not None and rt.abort_info.origin_rank == proc.rank:
                state = "aborted"
            elif fiber.shutdown_pending:
                state = "shutdown"
            else:
                state = "done"
            outcomes.append(
                RankOutcome(
                    rank=proc.rank,
                    state=state,
                    value=fiber.result,
                    error=fiber.error,
                    final_time=proc.now,
                )
            )
        result = SimulationResult(
            outcomes=outcomes,
            final_time=rt.clock.now,
            trace=rt.trace,
            aborted=rt.abort_info,
            deadlock=rt.deadlock,
            events_executed=rt.perf.events_executed,
            failed_ranks=frozenset(rt.failed),
            perf=rt.perf,
            metrics=rt.obs,
        )
        if raise_app_errors:
            for out in outcomes:
                if out.state == "error":
                    assert out.error is not None
                    raise SimulationError(out.rank, out.error) from out.error
        if result.deadlock is not None and on_deadlock == "raise":
            raise result.deadlock
        return result
