"""Collective operations, implemented over simulated point-to-point.

Collectives are deliberately built from p2p sends/receives on a hidden
context so that their failure behaviour is *honest*:

* A failure already known (and not collectively validated) fails the
  collective **at entry** with ``MPI_ERR_RANK_FAIL_STOP`` — the proposal's
  "collectives are disabled until ``MPI_Comm_validate_all``" rule.
* A failure that strikes **mid-collective** surfaces as p2p errors at the
  ranks that communicate with the dead process, while ranks that already
  finished their part may return success — exactly the *inconsistent
  return codes* the paper warns about (its ``MPI_Bcast`` tree example).

After a successful ``validate_all``, collectively-recognized failed ranks
drop out of the *participant list* (they behave as ``MPI_PROC_NULL``) and
the algorithms run over the survivors.

Algorithms: dissemination barrier, binomial-tree bcast/reduce,
reduce+bcast allreduce, linear gather/scatter, ring allgather, pairwise
alltoall, linear scan.  Each collective call consumes one tag from the
per-communicator collective sequence — MPI requires identical collective
call order at every rank, which keeps the sequences aligned.
"""

from __future__ import annotations

import operator
from functools import reduce as _freduce
from typing import Any, Callable, Sequence

from .communicator import CTX_COLL, Comm
from .errors import ErrorClass, InvalidArgumentError, RankFailStopError
from .request import Request, RequestKind
from .trace import TraceKind

#: Named reduction operators (callable ``f(a, b) -> c``; associative).
OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": operator.add,
    "prod": operator.mul,
    "max": max,
    "min": min,
    "land": lambda a, b: bool(a) and bool(b),
    "lor": lambda a, b: bool(a) or bool(b),
    "band": operator.and_,
    "bor": operator.or_,
}


def _resolve_op(op: str | Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    try:
        return OPS[op]
    except KeyError:
        raise InvalidArgumentError(
            f"unknown reduction op {op!r}", error_class=ErrorClass.ERR_OP
        ) from None


class _CollCtx:
    """Per-call context: participant list, my index, tag, raw p2p helpers.

    Tag discipline: every *user-level* collective call consumes exactly one
    value of the per-communicator sequence, with composite collectives
    (allreduce, reduce_scatter) deriving their phases' tags from a single
    base (``base * 8 + phase``).  This keeps ranks tag-aligned even when a
    failure aborts a composite mid-way — with naive one-tag-per-phase
    allocation, ranks erroring in different phases would consume different
    numbers of tags and all later collectives would mis-match (a bug found
    by this repository's recovery-block tests).
    """

    def __init__(self, comm: Comm, name: str, tag: int | None = None) -> None:
        proc = comm.proc
        proc._mpi_call(name)
        comm._check_not_freed()
        comm._check_revoked()
        self.comm = comm
        self.name = name
        self.tag = next(comm._coll_seq) * 8 if tag is None else tag
        known = comm.known_failed_comm_ranks()
        if not known <= comm.validated:
            proc.runtime.trace.record(
                proc.now, TraceKind.COLLECTIVE, proc.rank,
                op=name, outcome="disabled", unrecognized=sorted(known - comm.validated),
            )
            comm._raise(
                RankFailStopError(
                    f"{name} on {comm.name} with unrecognized failures "
                    f"{sorted(known - comm.validated)}"
                )
            )
        #: Comm ranks that take part (validated failures act as PROC_NULL).
        self.participants: list[int] = [
            r for r in range(comm.size) if r not in comm.validated
        ]
        if comm.rank in comm.validated:  # pragma: no cover - dead rank calling
            raise RuntimeError("a validated-failed rank cannot call collectives")
        self.me = self.participants.index(comm.rank)
        self.m = len(self.participants)

    # Raw p2p on the collective context.  Failure of a peer mid-collective
    # raises RankFailStopError here, which the collective propagates
    # through the comm's error handler.

    def _check_membership(self) -> None:
        """RTS rule: any not-collectively-validated failure in the comm
        aborts the collective at the next internal operation — peers may
        already have abandoned it, so waiting on even an *alive* peer is
        unsafe once a member is known dead."""
        comm = self.comm
        fresh = comm.known_failed_comm_ranks() - comm.validated
        if fresh:
            comm._raise(
                RankFailStopError(
                    f"{self.name}: member(s) {sorted(fresh)} failed "
                    f"mid-collective"
                )
            )

    def send(self, payload: Any, part_idx: int) -> None:
        comm, proc = self.comm, self.comm.proc
        dest_cr = self.participants[part_idx]
        self._check_membership()
        proc.runtime.post_send(
            proc,
            dst_world=comm.world_rank(dest_cr),
            tag=self.tag,
            context=comm.context(CTX_COLL),
            payload=payload,
            nbytes=None,
        )

    def recv(self, part_idx: int) -> Any:
        comm, proc = self.comm, self.comm.proc
        src_cr = self.participants[part_idx]
        self._check_membership()
        req = Request(
            RequestKind.RECV,
            proc,
            comm,
            peer=comm.world_rank(src_cr),
            tag=self.tag,
        )
        proc.runtime.post_recv(comm, req, context=comm.context(CTX_COLL))
        from .p2p import wait

        wait(req)  # raises via errhandler if src fails mid-collective
        return req.data

    def done(self, **detail: Any) -> None:
        proc = self.comm.proc
        proc.runtime.trace.record(
            proc.now, TraceKind.COLLECTIVE, proc.rank,
            op=self.name, outcome="ok", tag=self.tag, **detail,
        )


def barrier(comm: Comm) -> None:
    """Dissemination barrier: ``ceil(log2 m)`` rounds of pairwise signals."""
    ctx = _CollCtx(comm, "barrier")
    if ctx.m == 1:
        ctx.done()
        return
    k = 1
    while k < ctx.m:
        ctx.send(None, (ctx.me + k) % ctx.m)
        ctx.recv((ctx.me - k) % ctx.m)
        k *= 2
    ctx.done()


def _binomial_parent(me: int, root_idx: int, m: int) -> int | None:
    """Parent of *me* in a binomial tree of *m* nodes rooted at *root_idx*.

    Positions are relative to the root; the parent clears the highest set
    bit of the relative position.
    """
    rel = (me - root_idx) % m
    if rel == 0:
        return None
    parent_rel = rel - (1 << (rel.bit_length() - 1))
    return (parent_rel + root_idx) % m


def _binomial_children(me: int, root_idx: int, m: int) -> list[int]:
    """Children of *me*: relative positions ``rel + 2^j`` for ``2^j > rel``."""
    rel = (me - root_idx) % m
    children = []
    k = 1 << rel.bit_length()  # first power of two above rel (1 if rel == 0)
    if rel == 0:
        k = 1
    while rel + k < m:
        children.append((rel + k + root_idx) % m)
        k *= 2
    return children


def bcast(comm: Comm, payload: Any, root: int = 0, _tag: int | None = None) -> Any:
    """Binomial-tree broadcast from comm rank *root*.

    A validated-failed root has ``PROC_NULL`` semantics: the call returns
    the caller's input unchanged at every rank.
    """
    ctx = _CollCtx(comm, "bcast", tag=_tag)
    if root in comm.validated:
        ctx.done(root="proc_null")
        return payload
    if not 0 <= root < comm.size:
        comm._raise(
            InvalidArgumentError(f"invalid root {root}", error_class=ErrorClass.ERR_ROOT)
        )
    root_idx = ctx.participants.index(root)
    if ctx.m == 1:
        ctx.done()
        return payload
    parent = _binomial_parent(ctx.me, root_idx, ctx.m)
    if parent is not None:
        payload = ctx.recv(parent)
    for child in _binomial_children(ctx.me, root_idx, ctx.m):
        ctx.send(payload, child)
    ctx.done()
    return payload


def reduce(comm: Comm, value: Any, op: str | Callable[[Any, Any], Any] = "sum",
           root: int = 0, _tag: int | None = None) -> Any:
    """Binomial-tree reduction to *root* (result at root, ``None`` elsewhere).

    Combination order is by participant index, so non-commutative custom
    ops see operands in deterministic rank order.
    """
    ctx = _CollCtx(comm, "reduce", tag=_tag)
    fn = _resolve_op(op)
    if root in comm.validated:
        ctx.done(root="proc_null")
        return None
    root_idx = ctx.participants.index(root)
    # Gather up the mirrored binomial tree: children send partial results
    # to parents.  To keep combination order deterministic we accumulate
    # (participant_index, partial) pairs and fold sorted at the end.
    acc: list[tuple[int, Any]] = [(ctx.me, value)]
    for child in _binomial_children(ctx.me, root_idx, ctx.m):
        acc.extend(ctx.recv(child))
    parent = _binomial_parent(ctx.me, root_idx, ctx.m)
    if parent is not None:
        ctx.send(acc, parent)
        ctx.done()
        return None
    acc.sort(key=lambda p: p[0])
    result = _freduce(fn, (v for _, v in acc))
    ctx.done()
    return result


def allreduce(comm: Comm, value: Any, op: str | Callable[[Any, Any], Any] = "sum") -> Any:
    """Reduce-to-all = reduce to the lowest participant, then bcast.

    Both phases share one collective sequence number (see the tag
    discipline note on :class:`_CollCtx`).
    """
    root = None
    for r in range(comm.size):
        if r not in comm.validated:
            root = r
            break
    assert root is not None
    base = next(comm._coll_seq) * 8
    partial = reduce(comm, value, op, root=root, _tag=base)
    return bcast(comm, partial, root=root, _tag=base + 1)


def gather(comm: Comm, value: Any, root: int = 0) -> list[Any] | None:
    """Linear gather to *root*: result list indexed by comm rank.

    Validated-failed ranks contribute ``None`` (PROC_NULL semantics).
    """
    ctx = _CollCtx(comm, "gather")
    if root in comm.validated:
        ctx.done(root="proc_null")
        return None
    if comm.rank != root:
        root_idx = ctx.participants.index(root)
        ctx.send((comm.rank, value), root_idx)
        ctx.done()
        return None
    out: list[Any] = [None] * comm.size
    out[comm.rank] = value
    for idx in range(ctx.m):
        if ctx.participants[idx] == root:
            continue
        cr, v = ctx.recv(idx)
        out[cr] = v
    ctx.done()
    return out


def scatter(comm: Comm, values: Sequence[Any] | None, root: int = 0,
            _tag: int | None = None) -> Any:
    """Linear scatter from *root*; ``values`` is indexed by comm rank."""
    ctx = _CollCtx(comm, "scatter", tag=_tag)
    if root in comm.validated:
        ctx.done(root="proc_null")
        return None
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            comm._raise(
                InvalidArgumentError(
                    "scatter root needs one value per comm rank",
                    error_class=ErrorClass.ERR_COUNT,
                )
            )
        for idx in range(ctx.m):
            cr = ctx.participants[idx]
            if cr == root:
                continue
            ctx.send(values[cr], idx)
        ctx.done()
        return values[comm.rank]
    root_idx = ctx.participants.index(root)
    v = ctx.recv(root_idx)
    ctx.done()
    return v


def allgather(comm: Comm, value: Any) -> list[Any]:
    """Ring allgather: ``m - 1`` steps passing a growing window."""
    ctx = _CollCtx(comm, "allgather")
    out: list[Any] = [None] * comm.size
    out[comm.rank] = value
    right = (ctx.me + 1) % ctx.m
    left = (ctx.me - 1) % ctx.m
    carry = (comm.rank, value)
    for _ in range(ctx.m - 1):
        ctx.send(carry, right)
        carry = ctx.recv(left)
        out[carry[0]] = carry[1]
    ctx.done()
    return out


def alltoall(comm: Comm, values: Sequence[Any]) -> list[Any]:
    """Pairwise-exchange personalized all-to-all.

    ``values`` is indexed by comm rank; entries for validated-failed ranks
    are ignored, and their slots in the result stay ``None``.
    """
    ctx = _CollCtx(comm, "alltoall")
    if len(values) != comm.size:
        comm._raise(
            InvalidArgumentError(
                "alltoall needs one value per comm rank",
                error_class=ErrorClass.ERR_COUNT,
            )
        )
    out: list[Any] = [None] * comm.size
    out[comm.rank] = values[comm.rank]
    for step in range(1, ctx.m):
        dst = (ctx.me + step) % ctx.m
        src = (ctx.me - step) % ctx.m
        ctx.send(values[ctx.participants[dst]], dst)
        got = ctx.recv(src)
        out[ctx.participants[src]] = got
    ctx.done()
    return out


def scan(comm: Comm, value: Any, op: str | Callable[[Any, Any], Any] = "sum") -> Any:
    """Inclusive prefix reduction along participant order (linear chain)."""
    ctx = _CollCtx(comm, "scan")
    fn = _resolve_op(op)
    acc = value
    if ctx.me > 0:
        prev = ctx.recv(ctx.me - 1)
        acc = fn(prev, value)
    if ctx.me + 1 < ctx.m:
        ctx.send(acc, ctx.me + 1)
    ctx.done()
    return acc


def exscan(
    comm: Comm, value: Any, op: str | Callable[[Any, Any], Any] = "sum"
) -> Any:
    """Exclusive prefix reduction: participant 0 receives ``None``."""
    ctx = _CollCtx(comm, "exscan")
    fn = _resolve_op(op)
    if ctx.me == 0:
        prev = None
        acc = value
    else:
        prev = ctx.recv(ctx.me - 1)
        acc = fn(prev, value)
    if ctx.me + 1 < ctx.m:
        ctx.send(acc, ctx.me + 1)
    ctx.done()
    return prev


def reduce_scatter(
    comm: Comm,
    values: Sequence[Any],
    op: str | Callable[[Any, Any], Any] = "sum",
) -> Any:
    """Reduce one value per comm rank, scatter slot ``i`` to comm rank ``i``.

    ``values`` is indexed by comm rank; slots addressed to validated-failed
    ranks are ignored.  Implemented as reduce-to-lowest + scatter, which
    keeps the failure semantics identical to the other collectives.
    """
    ctx = _CollCtx(comm, "reduce_scatter")
    if len(values) != comm.size:
        comm._raise(
            InvalidArgumentError(
                "reduce_scatter needs one value per comm rank",
                error_class=ErrorClass.ERR_COUNT,
            )
        )
    fn = _resolve_op(op)
    root = ctx.participants[0]
    base = ctx.tag
    reduced = reduce(comm, list(values),
                     lambda a, b: _pairwise(a, b, fn), root=root,
                     _tag=base + 1)
    return scatter(comm, reduced, root=root, _tag=base + 2)


def _pairwise(
    a: Sequence[Any], b: Sequence[Any], fn: Callable[[Any, Any], Any]
) -> list[Any]:
    """Element-wise combine of two per-rank value lists (None passes through)."""
    out = []
    for x, y in zip(a, b):
        if x is None:
            out.append(y)
        elif y is None:
            out.append(x)
        else:
            out.append(fn(x, y))
    return out
