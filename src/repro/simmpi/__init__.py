"""``repro.simmpi`` — a deterministic discrete-event simulated MPI.

This package is the substrate the paper reproduction runs on: a pure
Python, single-machine simulator of an MPI job with

* one cooperatively-scheduled thread per rank (deterministic interleaving
  from a seed),
* virtual time under a pluggable LogGP-style cost model,
* MPI-1 style point-to-point (blocking and non-blocking, wildcards,
  non-overtaking matching) and collectives built over point-to-point,
* **fail-stop process failures** with a perfect failure detector and the
  run-through-stabilization error semantics
  (``MPI_ERR_RANK_FAIL_STOP``), and
* **global deadlock detection** — a proven hang, which real MPI cannot
  give you, and which the paper's Figure 6 scenario requires.

Quick taste::

    from repro.simmpi import Simulation

    def main(mpi):
        comm = mpi.comm_world
        if comm.rank == 0:
            comm.send("hello", dest=1)
        elif comm.rank == 1:
            data, status = comm.recv(source=0)
            return data

    result = Simulation(nprocs=2).run(main)
    assert result.value(1) == "hello"
"""

from .clock import Event, EventQueue, VirtualClock
from .communicator import CTX_AM, CTX_COLL, CTX_P2P, Comm
from .collectives import OPS, exscan, reduce_scatter
from .constants import (
    ANY_SOURCE,
    ANY_TAG,
    DEFAULT_ROOT,
    PROC_NULL,
    TAG_UB,
    UNDEFINED,
)
from .costmodel import (
    DEFAULT_COST,
    ZERO_COST,
    CostModel,
    HierarchicalCostModel,
    JitteredCostModel,
)
from .errors import (
    CommRevokedError,
    ErrorClass,
    ErrorHandler,
    InvalidArgumentError,
    JobAborted,
    MPIError,
    RankFailStopError,
    SimulationDeadlock,
    SimulationError,
    TruncationError,
)
from .fibers import (
    FIBER_BACKENDS,
    BaseFiber,
    GreenletFiber,
    ThreadFiber,
    available_backends,
    default_backend,
    greenlet_available,
    make_fiber,
    resolve_backend,
)
from .group import Group
from .matching import Message
from .nbcoll import ibarrier
from .rma import Win, win_create
from .p2p import test, testany, wait, waitall, waitany, waitsome
from .process import SimProcess
from .request import Request, RequestKind, Status
from .runtime import (
    RankOutcome,
    Runtime,
    Simulation,
    SimulationLimitExceeded,
    SimulationResult,
)
from .scheduler import (
    Fiber,
    FiberState,
    LowestRankFirstPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
)
from .trace import Trace, TraceEvent, TraceKind

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CTX_AM",
    "CTX_COLL",
    "CTX_P2P",
    "Comm",
    "CommRevokedError",
    "CostModel",
    "DEFAULT_COST",
    "DEFAULT_ROOT",
    "BaseFiber",
    "ErrorClass",
    "ErrorHandler",
    "Event",
    "EventQueue",
    "FIBER_BACKENDS",
    "Fiber",
    "FiberState",
    "GreenletFiber",
    "ThreadFiber",
    "available_backends",
    "default_backend",
    "greenlet_available",
    "make_fiber",
    "resolve_backend",
    "Group",
    "Win",
    "HierarchicalCostModel",
    "JitteredCostModel",
    "InvalidArgumentError",
    "JobAborted",
    "LowestRankFirstPolicy",
    "MPIError",
    "Message",
    "OPS",
    "PROC_NULL",
    "RandomPolicy",
    "RankFailStopError",
    "RankOutcome",
    "Request",
    "RequestKind",
    "RoundRobinPolicy",
    "Runtime",
    "SchedulingPolicy",
    "SimProcess",
    "Simulation",
    "SimulationDeadlock",
    "SimulationError",
    "SimulationLimitExceeded",
    "SimulationResult",
    "Status",
    "TAG_UB",
    "Trace",
    "TraceEvent",
    "TraceKind",
    "TruncationError",
    "UNDEFINED",
    "VirtualClock",
    "ZERO_COST",
    "test",
    "testany",
    "wait",
    "waitall",
    "waitany",
    "exscan",
    "ibarrier",
    "reduce_scatter",
    "waitsome",
    "win_create",
]
