"""Pluggable fiber backends: how a simulated rank's call stack suspends.

A *fiber* is one simulated MPI process: ordinary Python code whose entire
call stack must suspend whenever it blocks inside a simulated MPI call and
resume exactly where it left off when the scheduler hands back control.
Two backends implement that contract behind one API:

* :class:`ThreadFiber` (``"thread"``) — the pure-stdlib fallback.  Each
  fiber runs on a pooled OS thread and the handoff is a 2-lock baton;
  exactly one thread executes at any instant, so the simulation stays
  deterministic, but every handoff pays two kernel-level context
  switches (~10µs).
* :class:`GreenletFiber` (``"greenlet"``) — the fast backend.  Each fiber
  is a `greenlet <https://greenlet.readthedocs.io>`_: a real C-level
  stack switch on **one** thread, no locks and no kernel involvement in
  the handoff path (~0.1–0.5µs per switch).  Optional dependency —
  ``pip install repro[fast]``.

Both backends expose the same five-method lifecycle (:meth:`~BaseFiber.start`,
:meth:`~BaseFiber.resume_and_wait`, :meth:`~BaseFiber.yield_to_scheduler`,
:meth:`~BaseFiber.join`, :meth:`~BaseFiber.release`) plus the
kill/shutdown-pending unwinding flags, and both must produce
**byte-identical traces** for any simulation: the backend decides *how* a
stack suspends, never *which* fiber runs next (that is the scheduling
policy's job, see :mod:`repro.simmpi.scheduler`).  The golden determinism
matrix in ``tests/test_determinism_golden.py`` pins that equivalence for
every backend × policy combination.

Backend selection (:func:`resolve_backend`), most specific wins:

1. an explicit ``Simulation(fibers="thread"|"greenlet"|"auto")``;
2. the ``REPRO_FIBERS`` environment variable — read per ``Runtime``
   construction and inherited by pooled sweep workers, so one exported
   variable switches a whole ``--workers N`` campaign;
3. ``auto``: greenlet when importable, else the thread fallback.

The active backend is recorded in ``result.perf.fibers`` and in every
``BENCH_simperf.json`` counters block, but is — like ``wall_s`` — a host
implementation detail: it is excluded from result digests, ``.repro.json``
expect blocks, and run-cache payloads, which therefore remain valid across
backends (see :func:`repro.analysis.digest.perf_dict`).
"""

from __future__ import annotations

import enum
import os
import threading
from typing import Callable

from .errors import ProcessKilled, SimShutdown

try:  # optional extra: `pip install repro[fast]`
    import greenlet as _greenlet
except ImportError:  # pragma: no cover - exercised on stdlib-only installs
    _greenlet = None


class FiberState(enum.Enum):
    """Lifecycle of a fiber (identical across backends)."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"  # fail-stop: fiber unwound via ProcessKilled


class BaseFiber:
    """Backend-independent fiber state and unwinding contract.

    Subclasses supply the suspension mechanism (:meth:`start`,
    :meth:`resume_and_wait`, :meth:`yield_to_scheduler`); everything the
    runtime observes — :attr:`state`, :attr:`block_reason`, the
    kill/shutdown-pending flags, :attr:`error`/:attr:`result` capture —
    lives here and behaves identically on every backend.
    """

    #: Registry name of the backend ("thread" / "greenlet").
    backend = "abstract"

    __slots__ = (
        "name",
        "index",
        "state",
        "block_reason",
        "kill_pending",
        "shutdown_pending",
        "error",
        "result",
        "_target",
    )

    def __init__(self, name: str, index: int, target: Callable[[], None]) -> None:
        self.name = name
        #: Dense index (the MPI world rank) used by scheduling policies.
        self.index = index
        self.state = FiberState.NEW
        #: Human-readable reason the fiber is blocked (deadlock reports).
        self.block_reason = ""
        #: Set when the fiber must unwind with ProcessKilled on next resume.
        self.kill_pending = False
        #: Set when the fiber must unwind with SimShutdown on next resume.
        self.shutdown_pending = False
        #: Exception raised by the user target, if any (not kill/shutdown).
        self.error: BaseException | None = None
        #: Return value of the user target, if it completed normally.
        self.result: object = None
        self._target = target

    # -- fiber side -------------------------------------------------------

    def _check_pending(self) -> None:
        """Raise the pending unwinding exception, if any (fiber side)."""
        if self.kill_pending:
            raise ProcessKilled()
        if self.shutdown_pending:
            raise SimShutdown()

    def _run_target(self, wait: Callable[[], None] | None = None) -> None:
        """Execute the application target with the unwinding contract.

        *wait* (thread backend) blocks for the first baton and raises the
        pending exception; it sits inside the try so a kill or shutdown
        arriving before the fiber's first slice still unwinds cleanly.
        Backends without an initial wait (greenlet: the first resume IS
        the first entry) just re-check the pending flags.
        """
        try:
            if wait is not None:
                wait()
            else:
                self._check_pending()
            self.result = self._target()
            self.state = FiberState.DONE
        except ProcessKilled:
            self.state = FiberState.FAILED
        except SimShutdown:
            self.state = FiberState.DONE
        except BaseException as exc:  # noqa: BLE001 - reported to driver
            self.error = exc
            self.state = FiberState.DONE

    def yield_to_scheduler(self) -> None:
        """Called *from the fiber itself* when it blocks.

        Returns when the scheduler resumes this fiber, or raises
        :class:`ProcessKilled` / :class:`SimShutdown` if the fiber was
        killed or the simulation ended while it was blocked.
        """
        raise NotImplementedError

    # -- scheduler side ---------------------------------------------------

    def start(self) -> None:
        """Make the fiber resumable (it runs no user code until the first
        :meth:`resume_and_wait`)."""
        raise NotImplementedError

    def resume_and_wait(self) -> None:
        """Hand control to this fiber and return when it yields or exits."""
        raise NotImplementedError

    def finished(self) -> bool:
        return self.state in (FiberState.DONE, FiberState.FAILED)

    def join(self) -> None:
        """Wait for the fiber's bootstrap to complete (simulator teardown).

        A no-op on every backend: completion is already synchronized by
        the handoff itself — :meth:`resume_and_wait` only returns after
        the bootstrap finished its slice, so a finished fiber holds no
        reference into application code.  (The old ``timeout`` parameter
        was dead since the pooled-worker rewrite and has been removed.)
        """

    def release(self) -> None:
        """Drop the reference to the application target once the fiber
        has finished, so a retained fiber (e.g. via a kept Simulation)
        cannot pin per-run application state alive across a long sweep.
        Safe no-op while the fiber still runs."""
        if self.finished():
            self._target = _released


def _released() -> None:  # pragma: no cover - never executed
    raise RuntimeError("fiber target was released after fiber exit")


# ----------------------------------------------------------------------
# Thread backend (pure stdlib)
# ----------------------------------------------------------------------


class _FiberWorker:
    """One pooled OS thread that runs fiber bootstraps back to back.

    Creating an OS thread costs tens of microseconds plus scheduler
    setup; a sweep that runs thousands of short simulations pays that
    for every rank of every run.  Workers instead park on a private
    pre-acquired lock between assignments: :meth:`submit` hands them the
    next fiber, and after the fiber's bootstrap returns they re-enter
    the pool.  A worker only ever runs one fiber at a time and a fiber
    is only submitted once, so the baton protocol is unchanged.
    """

    __slots__ = ("_task", "_task_ready", "thread")

    def __init__(self) -> None:
        self._task: "ThreadFiber | None" = None
        self._task_ready = threading.Lock()
        self._task_ready.acquire()
        self.thread = threading.Thread(
            target=self._run, name="sim-fiber-worker", daemon=True
        )
        self.thread.start()

    def _run(self) -> None:
        while True:
            self._task_ready.acquire()
            fiber = self._task
            self._task = None
            if fiber is None:  # pragma: no cover - retirement path
                return
            fiber._bootstrap()
            if not _POOL.offer(self):
                return  # pool full (or forked child): let the thread die

    def submit(self, fiber: "ThreadFiber") -> None:
        self._task = fiber
        self._task_ready.release()


class _WorkerPool:
    """Process-wide free list of idle fiber workers (fork-aware)."""

    def __init__(self, max_idle: int = 64) -> None:
        self._lock = threading.Lock()
        self._idle: list[_FiberWorker] = []
        self._pid = os.getpid()
        self._max_idle = max_idle

    def get(self) -> _FiberWorker:
        with self._lock:
            if self._pid != os.getpid():
                # Forked child: inherited workers' threads do not exist
                # here; drop the bookkeeping and start fresh.
                self._idle.clear()
                self._pid = os.getpid()
            if self._idle:
                return self._idle.pop()
        return _FiberWorker()

    def offer(self, worker: _FiberWorker) -> bool:
        """Return *worker* to the pool; False tells it to retire."""
        with self._lock:
            if self._pid == os.getpid() and len(self._idle) < self._max_idle:
                self._idle.append(worker)
                return True
        return False  # pragma: no cover - overflow/fork retirement


_POOL = _WorkerPool()


class ThreadFiber(BaseFiber):
    """The stdlib fallback: one pooled OS thread per fiber, baton handoff.

    The baton is a ladder of two raw pre-acquired :class:`threading.Lock`
    objects — ``_resume`` (scheduler → fiber) and ``_yielded`` (fiber →
    scheduler).  Both start locked; a handoff is one ``release`` on the
    peer's lock plus one blocking ``acquire`` on your own, so a full
    round-trip costs four uncontended C-level lock operations **plus two
    OS context switches** — the cost the greenlet backend removes.
    Correctness relies on the strict alternation the scheduler already
    guarantees: exactly one thread runs at any instant, so each lock is
    released exactly once per handoff and re-locked by the blocking
    acquire that consumes the release.
    """

    backend = "thread"

    __slots__ = ("_resume", "_yielded", "_worker")

    def __init__(self, name: str, index: int, target: Callable[[], None]) -> None:
        super().__init__(name, index, target)
        # Both rungs start locked; see the class docstring for the protocol.
        self._resume = threading.Lock()
        self._resume.acquire()
        self._yielded = threading.Lock()
        self._yielded.acquire()
        # Assigned on start(): a pooled worker thread (see _FiberWorker).
        self._worker: _FiberWorker | None = None

    # -- thread side ------------------------------------------------------

    def _bootstrap(self) -> None:
        try:
            # The initial baton wait sits inside _run_target's try: a kill
            # or shutdown can arrive before the fiber's first slice.
            self._run_target(wait=self._wait_for_baton)
        finally:
            self._yielded.release()

    def _wait_for_baton(self) -> None:
        self._resume.acquire()
        self._check_pending()

    def yield_to_scheduler(self) -> None:
        self._yielded.release()
        self._wait_for_baton()

    # -- scheduler side ---------------------------------------------------

    def start(self) -> None:
        """Hand this fiber to a pooled thread (it immediately awaits the
        baton)."""
        self.state = FiberState.READY
        self._worker = _POOL.get()
        self._worker.submit(self)

    def resume_and_wait(self) -> None:
        self.state = FiberState.RUNNING
        self._resume.release()
        self._yielded.acquire()

    def release(self) -> None:
        super().release()
        if self.finished():
            self._worker = None


# ----------------------------------------------------------------------
# Greenlet backend (optional extra, single-threaded, zero-lock)
# ----------------------------------------------------------------------


class GreenletFiber(BaseFiber):
    """The fast backend: one greenlet per fiber, no OS threads, no locks.

    A handoff is a single C-level stack switch on the scheduler's own
    thread — :meth:`resume_and_wait` switches into the fiber's greenlet,
    :meth:`yield_to_scheduler` switches back to its parent (re-pointed at
    the resuming greenlet on every handoff, so nested simulations and
    pooled sweep workers all return to the right place).  When the
    bootstrap returns, the greenlet dies and control falls back to the
    parent automatically, which is exactly the thread backend's
    "resume returns after the final slice" contract.

    There is no per-process worker pool to manage and nothing to be
    fork-aware about: a greenlet is plain memory, so a forked sweep
    worker simply creates fresh ones.  Kill/fail-stop and shutdown
    unwinding reuse the shared :class:`BaseFiber` contract — the pending
    flags are checked on every resume (including the first, so a kill
    arriving before the fiber's first slice never runs user code).
    """

    backend = "greenlet"

    __slots__ = ("_glet",)

    def __init__(self, name: str, index: int, target: Callable[[], None]) -> None:
        if _greenlet is None:  # pragma: no cover - guarded by the registry
            raise RuntimeError(
                "the greenlet fiber backend requires the greenlet package "
                "(pip install repro[fast])"
            )
        super().__init__(name, index, target)
        self._glet: "_greenlet.greenlet | None" = None

    # -- fiber side -------------------------------------------------------

    def _bootstrap(self) -> None:
        self._run_target()
        # Returning kills the greenlet and switches to its parent — the
        # scheduler greenlet blocked in resume_and_wait.

    def yield_to_scheduler(self) -> None:
        glet = self._glet
        assert glet is not None
        glet.parent.switch()
        self._check_pending()

    # -- scheduler side ---------------------------------------------------

    def start(self) -> None:
        """Create the greenlet (cheap: no stack exists until first switch)."""
        self.state = FiberState.READY
        self._glet = _greenlet.greenlet(self._bootstrap)

    def resume_and_wait(self) -> None:
        self.state = FiberState.RUNNING
        glet = self._glet
        assert glet is not None
        # Re-parent on every handoff: the fiber must yield back to (and,
        # on death, fall back to) whichever greenlet resumed it.
        glet.parent = _greenlet.getcurrent()
        glet.switch()

    def release(self) -> None:
        super().release()
        if self.finished():
            self._glet = None  # the dead greenlet and its exit state


# ----------------------------------------------------------------------
# Backend registry and selection
# ----------------------------------------------------------------------

#: Every backend name this build knows about (importable or not).
FIBER_BACKENDS: tuple[str, ...] = ("thread", "greenlet")

_IMPORTABLE: dict[str, type[BaseFiber]] = {"thread": ThreadFiber}
if _greenlet is not None:
    _IMPORTABLE["greenlet"] = GreenletFiber


def greenlet_available() -> bool:
    """Is the optional greenlet package importable in this process?"""
    return _greenlet is not None


def available_backends() -> tuple[str, ...]:
    """The backends that can actually run here (test/bench matrices)."""
    return tuple(n for n in FIBER_BACKENDS if n in _IMPORTABLE)


def default_backend() -> str:
    """What ``auto`` resolves to: greenlet when importable, else thread."""
    return "greenlet" if _greenlet is not None else "thread"


def resolve_backend(spec: str | None = None) -> str:
    """Resolve a backend request to a concrete, importable backend name.

    ``spec`` of ``None`` defers to the ``REPRO_FIBERS`` environment
    variable (read per call, so pooled sweep workers — which inherit the
    parent's environment — honor it without any extra plumbing), and an
    empty/unset variable means ``auto``.  ``auto`` picks
    :func:`default_backend`.  A concrete name is validated: unknown names
    raise :class:`ValueError`; a known backend whose import is missing
    (greenlet on a stdlib-only install) raises :class:`RuntimeError`.
    """
    if spec is None:
        spec = os.environ.get("REPRO_FIBERS", "").strip() or "auto"
    if spec == "auto":
        return default_backend()
    if spec not in FIBER_BACKENDS:
        raise ValueError(
            f"unknown fiber backend {spec!r} "
            f"(known: auto, {', '.join(FIBER_BACKENDS)})"
        )
    if spec not in _IMPORTABLE:
        raise RuntimeError(
            f"fiber backend {spec!r} requested but the greenlet package is "
            f"not importable; install it (pip install repro[fast]) or select "
            f"the thread fallback (REPRO_FIBERS=thread)"
        )
    return spec


def make_fiber(
    backend: str, name: str, index: int, target: Callable[[], None]
) -> BaseFiber:
    """Instantiate one fiber on a resolved backend name."""
    return _IMPORTABLE[backend](name, index, target)


#: Back-compat alias: the stdlib fiber implementation (existing callers
#: construct ``Fiber(...)`` directly and expect the thread baton).
Fiber = ThreadFiber
