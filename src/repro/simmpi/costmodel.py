"""Communication cost models for the simulated network.

The default model is LogGP-flavoured [Alexandrov et al. 1995]:

* ``o``  — CPU overhead paid by the sender (and receiver) per message,
* ``L``  — wire latency between any pair of ranks,
* ``G``  — per-byte gap (inverse bandwidth).

A message of ``n`` bytes posted at sender-local time ``t`` occupies the
sender until ``t + o`` and arrives at the receiver at
``t + o + L + n * G``.  The model is deliberately simple — the paper's
content is protocol *behaviour*, not absolute performance — but it is
pluggable so benchmarks can sweep latency/bandwidth regimes, and a
non-uniform :class:`HierarchicalCostModel` is provided for
multi-node-flavoured topologies.

:class:`JitteredCostModel` perturbs any of the three parameters with a
**seeded, per-message** multiplicative factor so the schedule-space
fuzzer (:mod:`repro.fuzz`) can explore timing-dependent interleavings;
the perturbation is a pure function of ``(jitter_seed, component, src,
dst, occurrence)``, so a run under jitter is exactly as reproducible as
one without.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Uniform LogGP-style cost model.

    Parameters
    ----------
    latency:
        Wire latency ``L`` in virtual seconds.
    byte_cost:
        Per-byte gap ``G`` in virtual seconds/byte.
    overhead:
        Per-message CPU overhead ``o`` in virtual seconds.
    """

    latency: float = 1e-6
    byte_cost: float = 1e-9
    overhead: float = 2e-7

    def __post_init__(self) -> None:
        if self.latency < 0 or self.byte_cost < 0 or self.overhead < 0:
            raise ValueError("cost model parameters must be non-negative")

    def send_overhead(self, src: int, dst: int, nbytes: int) -> float:
        """CPU time the sender spends injecting one message."""
        return self.overhead

    def recv_overhead(self, src: int, dst: int, nbytes: int) -> float:
        """CPU time the receiver spends extracting one message."""
        return self.overhead

    def transit_time(self, src: int, dst: int, nbytes: int) -> float:
        """Time from injection completion to arrival at the destination."""
        return self.latency + nbytes * self.byte_cost


@dataclass(frozen=True)
class HierarchicalCostModel(CostModel):
    """Two-level cost model: cheap intra-node, expensive inter-node links.

    Ranks are laid out block-wise across nodes of ``ranks_per_node`` each.
    A pair of ranks on the same node communicates with the base-class
    parameters; a pair on different nodes pays ``remote_latency`` and
    ``remote_byte_cost`` instead.
    """

    ranks_per_node: int = 4
    remote_latency: float = 1e-5
    remote_byte_cost: float = 1e-8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if self.remote_latency < 0 or self.remote_byte_cost < 0:
            raise ValueError("remote cost parameters must be non-negative")

    def _same_node(self, src: int, dst: int) -> bool:
        return src // self.ranks_per_node == dst // self.ranks_per_node

    def transit_time(self, src: int, dst: int, nbytes: int) -> float:
        if self._same_node(src, dst):
            return self.latency + nbytes * self.byte_cost
        return self.remote_latency + nbytes * self.remote_byte_cost


def _unit_hash(seed: int, component: int, src: int, dst: int, occ: int) -> float:
    """Stable uniform draw in ``[0, 1)`` from a fully explicit key.

    Built on BLAKE2b rather than Python's salted ``hash`` so the same key
    yields the same draw in every process — a pooled fuzz worker and a
    local replay must agree byte-for-byte.
    """
    digest = hashlib.blake2b(
        struct.pack("<qqqqq", seed, component, src, dst, occ), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2.0**64


#: Component ids feeding :func:`_unit_hash` (stable; serialized in seeds).
_JIT_SEND, _JIT_RECV, _JIT_LATENCY, _JIT_BYTE = 0, 1, 2, 3


@dataclass(frozen=True)
class JitteredCostModel(CostModel):
    """Seeded multiplicative timing jitter around the uniform LogGP model.

    Each send overhead, receive overhead, and transit time is scaled by
    an independent factor ``1 + a * (2u - 1)`` where ``a`` is the
    component's jitter amplitude (``0 <= a <= 1``) and ``u`` is a stable
    hash of ``(jitter_seed, component, src, dst, occurrence)``.  The
    occurrence counter makes repeated messages on the same channel see
    *different* perturbations, while keeping the whole run a pure
    function of the seed: the simulator issues cost-model calls in a
    deterministic order, so the counters — and therefore every factor —
    replay exactly.

    A model with all amplitudes zero produces factors of exactly ``1.0``
    and is byte-identical to the plain :class:`CostModel`.

    Instances carry occurrence counters, so build a **fresh model per
    simulation** (the fuzzer's config layer does); a reused instance
    would continue its counters where the previous run left off.
    """

    jitter_seed: int = 0
    overhead_jitter: float = 0.0
    latency_jitter: float = 0.0
    byte_cost_jitter: float = 0.0
    #: Per-(component, src, dst) occurrence counters (mutable bookkeeping
    #: inside a frozen spec; excluded from equality).
    _counts: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("overhead_jitter", "latency_jitter", "byte_cost_jitter"):
            a = getattr(self, name)
            if not 0.0 <= a <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")

    def _factor(self, amplitude: float, component: int, src: int, dst: int) -> float:
        if amplitude == 0.0:
            return 1.0
        key = (component, src, dst)
        occ = self._counts.get(key, 0)
        self._counts[key] = occ + 1
        u = _unit_hash(self.jitter_seed, component, src, dst, occ)
        return 1.0 + amplitude * (2.0 * u - 1.0)

    def send_overhead(self, src: int, dst: int, nbytes: int) -> float:
        return self.overhead * self._factor(self.overhead_jitter, _JIT_SEND, src, dst)

    def recv_overhead(self, src: int, dst: int, nbytes: int) -> float:
        return self.overhead * self._factor(self.overhead_jitter, _JIT_RECV, src, dst)

    def transit_time(self, src: int, dst: int, nbytes: int) -> float:
        lat = self.latency * self._factor(self.latency_jitter, _JIT_LATENCY, src, dst)
        per_byte = self.byte_cost * self._factor(
            self.byte_cost_jitter, _JIT_BYTE, src, dst
        )
        return lat + nbytes * per_byte


#: A cost model in which every operation is free.  Useful for tests that
#: reason purely about orderings (all timestamps collapse to event order).
ZERO_COST = CostModel(latency=0.0, byte_cost=0.0, overhead=0.0)

#: The default model used by :class:`~repro.simmpi.runtime.Simulation`.
DEFAULT_COST = CostModel()
