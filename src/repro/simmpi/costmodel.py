"""Communication cost models for the simulated network.

The default model is LogGP-flavoured [Alexandrov et al. 1995]:

* ``o``  — CPU overhead paid by the sender (and receiver) per message,
* ``L``  — wire latency between any pair of ranks,
* ``G``  — per-byte gap (inverse bandwidth).

A message of ``n`` bytes posted at sender-local time ``t`` occupies the
sender until ``t + o`` and arrives at the receiver at
``t + o + L + n * G``.  The model is deliberately simple — the paper's
content is protocol *behaviour*, not absolute performance — but it is
pluggable so benchmarks can sweep latency/bandwidth regimes, and a
non-uniform :class:`HierarchicalCostModel` is provided for
multi-node-flavoured topologies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Uniform LogGP-style cost model.

    Parameters
    ----------
    latency:
        Wire latency ``L`` in virtual seconds.
    byte_cost:
        Per-byte gap ``G`` in virtual seconds/byte.
    overhead:
        Per-message CPU overhead ``o`` in virtual seconds.
    """

    latency: float = 1e-6
    byte_cost: float = 1e-9
    overhead: float = 2e-7

    def __post_init__(self) -> None:
        if self.latency < 0 or self.byte_cost < 0 or self.overhead < 0:
            raise ValueError("cost model parameters must be non-negative")

    def send_overhead(self, src: int, dst: int, nbytes: int) -> float:
        """CPU time the sender spends injecting one message."""
        return self.overhead

    def recv_overhead(self, src: int, dst: int, nbytes: int) -> float:
        """CPU time the receiver spends extracting one message."""
        return self.overhead

    def transit_time(self, src: int, dst: int, nbytes: int) -> float:
        """Time from injection completion to arrival at the destination."""
        return self.latency + nbytes * self.byte_cost


@dataclass(frozen=True)
class HierarchicalCostModel(CostModel):
    """Two-level cost model: cheap intra-node, expensive inter-node links.

    Ranks are laid out block-wise across nodes of ``ranks_per_node`` each.
    A pair of ranks on the same node communicates with the base-class
    parameters; a pair on different nodes pays ``remote_latency`` and
    ``remote_byte_cost`` instead.
    """

    ranks_per_node: int = 4
    remote_latency: float = 1e-5
    remote_byte_cost: float = 1e-8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if self.remote_latency < 0 or self.remote_byte_cost < 0:
            raise ValueError("remote cost parameters must be non-negative")

    def _same_node(self, src: int, dst: int) -> bool:
        return src // self.ranks_per_node == dst // self.ranks_per_node

    def transit_time(self, src: int, dst: int, nbytes: int) -> float:
        if self._same_node(src, dst):
            return self.latency + nbytes * self.byte_cost
        return self.remote_latency + nbytes * self.remote_byte_cost


#: A cost model in which every operation is free.  Useful for tests that
#: reason purely about orderings (all timestamps collapse to event order).
ZERO_COST = CostModel(latency=0.0, byte_cost=0.0, overhead=0.0)

#: The default model used by :class:`~repro.simmpi.runtime.Simulation`.
DEFAULT_COST = CostModel()
