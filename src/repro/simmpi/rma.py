"""One-sided communication (RMA) with run-through stabilization semantics.

The paper's §II notes the FT Working Group was "currently extending both
the proposal and prototype to support the remainder of the MPI standard
including parallel I/O and one-sided operations".  This module is that
extension for one-sided operations, scoped to active-target (fence)
synchronization:

* :func:`win_create` — collectively expose a per-rank numpy buffer;
* :meth:`Win.put` / :meth:`Win.get` / :meth:`Win.accumulate` —
  non-blocking one-sided operations executed by the target's *progress
  engine* (the AM layer), so the target's application thread never
  participates — the defining property of RMA;
* :meth:`Win.fence` — close the epoch: wait for every locally-issued
  operation's remote completion, then a barrier over the validated
  membership.

Failure semantics, following the proposal's pattern:

* an operation addressed to a known-failed, unrecognized rank raises
  ``MPI_ERR_RANK_FAIL_STOP``; addressed to a *recognized* failed rank it
  follows ``MPI_PROC_NULL`` semantics (completes immediately, no data,
  gets return zeros);
* an operation in flight when its target dies completes in error at the
  origin once the failure is detected (same sweep as pending
  synchronous sends);
* ``fence`` is a collective: it obeys the "disabled until
  ``MPI_Comm_validate_all``" rule and errors while unrecognized failures
  exist.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

import numpy as np

from .collectives import OPS
from .communicator import Comm
from .constants import PROC_NULL
from .errors import (
    ErrorClass,
    InvalidArgumentError,
    RankFailStopError,
)
from .request import Request, RequestKind, Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .matching import Message
    from .runtime import Runtime

#: Context offset for RMA traffic (after p2p/coll/am/nbc).
CTX_RMA = 4

_ENGINE_ATTR = "_rma_engine"


class RMAEngine:
    """Progress engine applying one-sided operations at their targets."""

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        #: (world_rank, cid, win_id) -> exposed numpy buffer.
        self.windows: dict[tuple[int, int, int], np.ndarray] = {}
        #: Origin-side pending requests by id (awaiting ack/reply).
        self.pending: dict[int, Request] = {}
        self._handling: set[tuple[int, int]] = set()

    def ensure_comm(self, comm: Comm) -> None:
        ctx = comm.context(CTX_RMA)
        for wr in comm.group:
            if (wr, ctx) not in self._handling:
                self._handling.add((wr, ctx))
                self.runtime.register_am_handler(
                    wr, ctx, lambda msg, t, r=wr: self._on_message(r, msg, t)
                )

    # -- target side (event context) -----------------------------------------

    def _on_message(self, owner: int, msg: "Message", time: float) -> None:
        kind = msg.payload[0]
        if kind == "put":
            _, cid, win_id, offset, data, req_id, origin, ctx = msg.payload
            buf = self.windows.get((owner, cid, win_id))
            if buf is not None:
                arr = np.asarray(data)
                buf[offset:offset + arr.size] = arr
            self.runtime.send_am(owner, origin, ctx, ("ack", req_id))
        elif kind == "acc":
            _, cid, win_id, offset, data, op, req_id, origin, ctx = msg.payload
            buf = self.windows.get((owner, cid, win_id))
            if buf is not None:
                fn = OPS[op]
                arr = np.asarray(data)
                for i in range(arr.size):
                    buf[offset + i] = fn(buf[offset + i], arr[i])
            self.runtime.send_am(owner, origin, ctx, ("ack", req_id))
        elif kind == "get":
            _, cid, win_id, offset, count, req_id, origin, ctx = msg.payload
            buf = self.windows.get((owner, cid, win_id))
            data = (
                buf[offset:offset + count].copy().tolist()
                if buf is not None else [0.0] * count
            )
            self.runtime.send_am(
                owner, origin, ctx, ("reply", req_id, data)
            )
        elif kind == "ack":
            _, req_id = msg.payload
            req = self.pending.pop(req_id, None)
            if req is not None and not req.done:
                req.complete(time, status=Status())
        elif kind == "reply":
            _, req_id, data = msg.payload
            req = self.pending.pop(req_id, None)
            if req is not None and not req.done:
                req.complete(
                    time,
                    data=np.asarray(data),
                    status=Status(count=len(data)),
                )


def engine_for(runtime: "Runtime") -> RMAEngine:
    """Get (or lazily create) the simulation's RMA engine."""
    engine = getattr(runtime, _ENGINE_ATTR, None)
    if engine is None:
        engine = RMAEngine(runtime)
        setattr(runtime, _ENGINE_ATTR, engine)
    return engine


class Win:
    """A one-sided window handle for one process."""

    def __init__(self, comm: Comm, win_id: int, size: int, init: float) -> None:
        self.comm = comm
        self.win_id = win_id
        self.size = size
        proc = comm.proc
        self._engine = engine_for(proc.runtime)
        self._engine.ensure_comm(comm)
        self._engine.windows[(proc.rank, comm.cid, win_id)] = np.full(
            size, float(init)
        )
        #: Operations issued since the last fence (awaiting completion).
        self._epoch_requests: list[Request] = []

    # -- local access ----------------------------------------------------------

    @property
    def local(self) -> np.ndarray:
        """This rank's exposed buffer (direct, mutable view)."""
        proc = self.comm.proc
        return self._engine.windows[(proc.rank, self.comm.cid, self.win_id)]

    # -- one-sided operations ---------------------------------------------------

    def _check_target(self, target: int) -> str:
        """Returns "null" | "error" | "ok" for the target's FT state."""
        comm = self.comm
        if target == PROC_NULL or target in comm.recognized:
            return "null"
        if not 0 <= target < comm.size:
            comm._raise(
                InvalidArgumentError(
                    f"invalid RMA target {target}",
                    error_class=ErrorClass.ERR_RANK,
                )
            )
        if comm._known_failed(target):
            comm._raise(
                RankFailStopError(f"RMA target {target} failed", peer=target)
            )
        return "ok"

    def _issue(self, target: int, payload_tail: tuple) -> Request:
        comm = self.comm
        proc = comm.proc
        req = Request(RequestKind.GENERIC, proc, comm,
                      peer=comm.world_rank(target))
        self._engine.pending[req.id] = req
        proc.runtime.track_peer_request(proc.rank, req)
        ctx = comm.context(CTX_RMA)
        proc.runtime.send_am(
            proc.rank,
            comm.world_rank(target),
            ctx,
            payload_tail[:1] + (comm.cid, self.win_id) + payload_tail[1:]
            + (req.id, proc.rank, ctx),
        )
        self._epoch_requests.append(req)
        return req

    def put(self, data: Any, target: int, offset: int = 0) -> Request:
        """Write *data* into the target's window at *offset*."""
        self.comm.proc._mpi_call("rma_put")
        if self._check_target(target) == "null":
            return _null_request(self.comm)
        arr = np.asarray(data, dtype=float)
        return self._issue(target, ("put", offset, arr.tolist()))

    def get(self, target: int, offset: int = 0, count: int = 1) -> Request:
        """Read *count* elements from the target's window at *offset*.

        The returned request's ``data`` holds the values on completion.
        """
        self.comm.proc._mpi_call("rma_get")
        if self._check_target(target) == "null":
            req = _null_request(self.comm, data=np.zeros(count))
            return req
        req = self._issue(target, ("get", offset, count))
        return req

    def accumulate(
        self, data: Any, target: int, offset: int = 0, op: str = "sum"
    ) -> Request:
        """Combine *data* into the target's window with the named op."""
        self.comm.proc._mpi_call("rma_accumulate")
        if op not in OPS:
            self.comm._raise(
                InvalidArgumentError(
                    f"unknown RMA op {op!r}", error_class=ErrorClass.ERR_OP
                )
            )
        if self._check_target(target) == "null":
            return _null_request(self.comm)
        arr = np.asarray(data, dtype=float)
        return self._issue(target, ("acc", offset, arr.tolist(), op))

    # -- synchronization ---------------------------------------------------------

    def fence(self) -> None:
        """Close the access epoch (collective).

        Waits for remote completion of every operation issued since the
        previous fence, then synchronizes with a barrier over the
        validated membership.  Raises ``MPI_ERR_RANK_FAIL_STOP`` under the
        collective-disable rule (including when an epoch operation's
        target died in flight).
        """
        comm = self.comm
        comm.proc._mpi_call("rma_fence")
        from .p2p import wait

        reqs, self._epoch_requests = self._epoch_requests, []
        for req in reqs:
            wait(req)  # raises through the errhandler on target death
        comm.barrier()

    def free(self) -> None:
        """Drop the window's exposed buffer (local operation)."""
        proc = self.comm.proc
        self._engine.windows.pop(
            (proc.rank, self.comm.cid, self.win_id), None
        )


def _null_request(comm: Comm, data: Any = None) -> Request:
    """An already-complete request (PROC_NULL semantics)."""
    req = Request(RequestKind.GENERIC, comm.proc, comm)
    req.complete(comm.proc.now, data=data, status=Status(source=PROC_NULL))
    return req


def win_create(comm: Comm, size: int, init: float = 0.0) -> Win:
    """Collectively create a window of *size* float elements per rank.

    Every member of *comm* must call; window ids are allocated in call
    order (like every other collective, calls must match across ranks).
    """
    proc = comm.proc
    proc._mpi_call("win_create")
    if size < 0:
        comm._raise(
            InvalidArgumentError("window size must be >= 0",
                                 error_class=ErrorClass.ERR_ARG)
        )
    counter = getattr(comm, "_win_seq", None)
    if counter is None:
        counter = itertools.count()
        comm._win_seq = counter  # type: ignore[attr-defined]
    win_id = next(counter)
    return Win(comm, win_id, size, init)
