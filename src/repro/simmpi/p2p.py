"""Completion operations: ``wait`` / ``waitany`` / ``waitall`` / ``test``.

These are module-level functions (as in MPI, completion is not a
communicator method).  Error delivery follows the owning communicator's
error handler: under ``ERRORS_RETURN`` a failed completion raises an
:class:`~repro.simmpi.errors.MPIError` whose ``index`` attribute tells the
caller *which* request failed — the Python analogue of the ``idx``
out-parameter the paper's ``FT_Recv_left`` inspects (Fig. 9 line 8-11).

A request that completed in error is *consumed* by the wait that reported
it (``done`` stays true; callers repost as the paper's pseudo code does).
"""

from __future__ import annotations

from typing import Sequence

from .errors import (
    CommRevokedError,
    ErrorClass,
    ErrorHandler,
    MPIError,
    RankFailStopError,
)
from .request import Request, Status


def _owner(requests: Sequence[Request]) -> "SimProcess":  # type: ignore[name-defined]
    if not requests:
        raise ValueError("empty request list")
    owner = requests[0].owner
    for r in requests[1:]:
        if r.owner is not owner:
            raise ValueError("all requests in one wait must share an owner")
    return owner


def _raise_for(req: Request, index: int) -> None:
    """Raise the error recorded on *req* through its comm's error handler."""
    assert req.error is not None
    peer = req.peer
    if req.comm is not None and isinstance(peer, int) and peer >= 0:
        cr = req.comm.comm_rank_of_world(peer)
        if cr is not None:
            peer = cr
    if req.error is ErrorClass.ERR_RANK_FAIL_STOP:
        exc: MPIError = RankFailStopError(
            f"peer {peer} failed ({req.kind.value})", peer=peer, index=index
        )
    elif req.error is ErrorClass.ERR_REVOKED:
        exc = CommRevokedError(
            f"communicator revoked ({req.kind.value})", peer=peer, index=index
        )
    else:
        exc = MPIError(
            f"{req.kind.value} failed: {req.error!s}",
            error_class=req.error,
            peer=peer,
            index=index,
        )
    exc.status = req.status  # type: ignore[attr-defined]
    if req.comm is not None and req.comm.errhandler is ErrorHandler.ERRORS_ARE_FATAL:
        req.owner.abort(int(req.error))
    raise exc


def wait(request: Request) -> Status:
    """Block until *request* completes; return its status or raise."""
    proc = request.owner
    proc._mpi_call("wait")
    while not request.done:
        request.add_waiter(proc)
        proc.block(_describe([request]))
    request.remove_waiter(proc)
    if request.completion_time is not None:
        proc.now = max(proc.now, request.completion_time)
    if request.error is not None:
        _raise_for(request, 0)
    assert request.status is not None
    return request.status


def waitany(requests: Sequence[Request]) -> tuple[int, Status]:
    """Block until any request completes; return ``(index, status)``.

    If the completed request carries an error, an exception is raised whose
    ``index`` attribute identifies it (so the caller can repost just that
    request, as ``FT_Recv_left`` does).
    """
    proc = _owner(requests)
    proc._mpi_call("waitany")
    while True:
        for i, req in enumerate(requests):
            if req.done:
                for r in requests:
                    r.remove_waiter(proc)
                if req.completion_time is not None:
                    proc.now = max(proc.now, req.completion_time)
                if req.error is not None:
                    _raise_for(req, i)
                assert req.status is not None
                return i, req.status
        for req in requests:
            req.add_waiter(proc)
        proc.block(_describe(requests))


def waitall(requests: Sequence[Request]) -> list[Status]:
    """Block until every request completes.

    If any completed in error, raises for the lowest-index failure after
    all completions (statuses of the others are on their requests).
    """
    proc = _owner(requests)
    proc._mpi_call("waitall")
    while not all(r.done for r in requests):
        for req in requests:
            if not req.done:
                req.add_waiter(proc)
        proc.block(_describe(requests))
    for req in requests:
        req.remove_waiter(proc)
        if req.completion_time is not None:
            proc.now = max(proc.now, req.completion_time)
    for i, req in enumerate(requests):
        if req.error is not None:
            _raise_for(req, i)
    return [r.status for r in requests]  # type: ignore[return-value]


def waitsome(requests: Sequence[Request]) -> list[tuple[int, Status]]:
    """Block until at least one completes; return all completed (index, status).

    Errors are reported like :func:`waitany`, for the lowest-index failed
    completion.
    """
    proc = _owner(requests)
    proc._mpi_call("waitsome")
    while not any(r.done for r in requests):
        for req in requests:
            req.add_waiter(proc)
        proc.block(_describe(requests))
    for req in requests:
        req.remove_waiter(proc)
    done = [(i, r) for i, r in enumerate(requests) if r.done]
    for _, r in done:
        if r.completion_time is not None:
            proc.now = max(proc.now, r.completion_time)
    for i, r in done:
        if r.error is not None:
            _raise_for(r, i)
    return [(i, r.status) for i, r in done]  # type: ignore[misc]


def test(request: Request) -> Status | None:
    """Non-blocking completion check.

    Returns the status if complete (raising on error), else ``None``.
    Each unsuccessful poll advances virtual time by one poll interval so a
    test loop cannot freeze the simulation.
    """
    proc = request.owner
    proc._mpi_call("test")
    if not request.done:
        proc.runtime.poll_block(proc, "test")
    if not request.done:
        return None
    if request.completion_time is not None:
        proc.now = max(proc.now, request.completion_time)
    if request.error is not None:
        _raise_for(request, 0)
    return request.status


def testany(requests: Sequence[Request]) -> tuple[int, Status] | None:
    """Non-blocking variant of :func:`waitany`; ``None`` if none complete."""
    proc = _owner(requests)
    proc._mpi_call("testany")
    if not any(r.done for r in requests):
        proc.runtime.poll_block(proc, "testany")
    for i, req in enumerate(requests):
        if req.done:
            if req.completion_time is not None:
                proc.now = max(proc.now, req.completion_time)
            if req.error is not None:
                _raise_for(req, i)
            return i, req.status  # type: ignore[return-value]
    return None


def _describe(requests: Sequence[Request]) -> str:
    parts = []
    for r in requests:
        parts.append(f"{r.kind.value}(peer={r.peer}, tag={r.tag}, id={r.id})")
    return "wait on [" + ", ".join(parts) + "]"
