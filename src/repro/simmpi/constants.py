"""Wildcard and sentinel constants mirroring the MPI standard.

The numeric values follow the common MPICH/Open MPI convention of small
negative integers so that they can never collide with a real rank or tag
(ranks and tags are non-negative in this simulator).
"""

from __future__ import annotations

from typing import Final

#: Wildcard source rank for receive operations (``MPI_ANY_SOURCE``).
ANY_SOURCE: Final[int] = -1

#: Wildcard tag for receive operations (``MPI_ANY_TAG``).
ANY_TAG: Final[int] = -1

#: Null process sentinel (``MPI_PROC_NULL``).  Point-to-point operations
#: addressed to :data:`PROC_NULL` complete immediately and transfer no data.
#: Recognized failed ranks adopt these semantics per the run-through
#: stabilization proposal.
PROC_NULL: Final[int] = -2

#: Undefined value (``MPI_UNDEFINED``), e.g. the color for ranks that do not
#: join any communicator in a :meth:`Comm.split`.
UNDEFINED: Final[int] = -3

#: Rank of the root used by convention in examples and tests.
DEFAULT_ROOT: Final[int] = 0

#: Upper bound on user tags (``MPI_TAG_UB``).  Tags above this value are
#: reserved for internal protocols (collectives, consensus).
TAG_UB: Final[int] = 2**20

#: First tag reserved for the collective implementation.
_COLL_TAG_BASE: Final[int] = TAG_UB + 1


def is_valid_rank(rank: int, size: int) -> bool:
    """Return ``True`` if *rank* addresses a member of a *size*-rank group.

    Wildcards and :data:`PROC_NULL` are *not* valid member ranks; callers
    that accept them must test for them explicitly first.
    """
    return 0 <= rank < size


def is_valid_tag(tag: int) -> bool:
    """Return ``True`` if *tag* may be used by an application send."""
    return 0 <= tag <= TAG_UB
