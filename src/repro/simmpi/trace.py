"""Structured execution traces.

Every simulation records a sequence of :class:`TraceEvent` records: sends,
deliveries, matches, failures, detector notifications, collective phases,
and application-defined probe points.  Traces serve three purposes:

1. **Determinism checks** — two runs with identical seeds must produce
   identical traces (asserted by the test suite).
2. **Scenario classification** — the benchmark harness reconstructs the
   paper's message-sequence figures (6, 7, 8, 10) from traces.
3. **Debugging** — ``trace.format()`` pretty-prints a timeline.

Tracing is free when disabled: the kernel's hot paths test
:attr:`Trace.enabled` *before* building the record's detail dict, so a
``trace_enabled=False`` run allocates nothing per event.  Long sweeps can
also cap memory with ``cap=N``: the trace then keeps only the most recent
*N* records (a ring buffer) and counts what it dropped.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Iterator


class TraceKind(enum.Enum):
    """Category of a trace record."""

    SEND_POST = "send_post"
    SEND_DROP = "send_drop"  # message dropped: destination already failed
    DELIVER = "deliver"
    MATCH = "match"
    RECV_POST = "recv_post"
    RECV_COMPLETE = "recv_complete"
    REQ_ERROR = "req_error"
    FAILURE = "failure"
    DETECT = "detect"
    REVOKE = "revoke"  # a communicator revocation notice took effect
    VALIDATE = "validate"
    COLLECTIVE = "collective"
    ABORT = "abort"
    PROBE = "probe"
    PROC_DONE = "proc_done"
    DEADLOCK = "deadlock"
    USER = "user"


class TraceEvent:
    """One timestamped record in a simulation trace.

    A plain ``__slots__`` class rather than a dataclass: records are
    constructed on the kernel's hot path, and a hand-written ``__init__``
    is ~3x cheaper than the generated (frozen) dataclass one.  Treat
    instances as immutable.
    """

    __slots__ = ("time", "kind", "rank", "detail")

    def __init__(
        self,
        time: float,
        kind: TraceKind,
        rank: int,
        detail: dict[str, Any] | None = None,
    ) -> None:
        self.time = time
        self.kind = kind
        self.rank = rank
        #: Free-form payload; keys depend on ``kind`` (``peer``, ``tag``, ...).
        self.detail: dict[str, Any] = {} if detail is None else detail

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceEvent(time={self.time!r}, kind={self.kind!r}, "
            f"rank={self.rank!r}, detail={self.detail!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.time == other.time
            and self.kind == other.kind
            and self.rank == other.rank
            and self.detail == other.detail
        )

    def format(self) -> str:
        """Render as a single human-readable timeline line."""
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:12.9f}] r{self.rank:<3d} {self.kind.value:<14s} {detail}"

    def key(self) -> tuple[Any, ...]:
        """A hashable identity used by determinism-comparison tests."""
        return (
            self.time,
            self.kind.value,
            self.rank,
            tuple(sorted((k, repr(v)) for k, v in self.detail.items())),
        )


class Trace:
    """An append-only sequence of :class:`TraceEvent` records.

    ``cap`` bounds memory for long sweeps: when set, only the most recent
    ``cap`` records are retained (:attr:`dropped` counts the overflow).
    """

    __slots__ = ("enabled", "cap", "dropped", "_events")

    def __init__(self, enabled: bool = True, cap: int | None = None) -> None:
        if cap is not None and cap < 1:
            raise ValueError("trace cap must be >= 1")
        self.enabled = enabled
        self.cap = cap
        #: Records discarded by the ring buffer (0 when uncapped).
        self.dropped = 0
        self._events: "list[TraceEvent] | deque[TraceEvent]" = (
            [] if cap is None else deque(maxlen=cap)
        )

    def record(
        self, time: float, kind: TraceKind, rank: int, **detail: Any
    ) -> None:
        """Append one record (no-op when tracing is disabled).

        Hot kernel paths guard with ``if trace.enabled:`` *before* calling
        so a disabled trace costs nothing; this method keeps the check for
        all other callers.
        """
        if self.enabled:
            events = self._events
            if self.cap is not None and len(events) == self.cap:
                self.dropped += 1
            events.append(TraceEvent(time, kind, rank, detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, idx: int) -> TraceEvent:
        return self._events[idx]

    def filter(
        self,
        kind: "TraceKind | tuple[TraceKind, ...] | frozenset[TraceKind] | None" = None,
        rank: int | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """Return records matching all of the given criteria.

        ``kind`` accepts a single :class:`TraceKind` or any collection of
        kinds — the space-time renderer and the exporters all select
        several kinds at once, so one pass here replaces repeated
        single-kind filters.
        """
        kinds: "frozenset[TraceKind] | None"
        if kind is None:
            kinds = None
        elif isinstance(kind, TraceKind):
            kinds = frozenset((kind,))
        else:
            kinds = frozenset(kind)
        out = []
        for ev in self._events:
            if kinds is not None and ev.kind not in kinds:
                continue
            if rank is not None and ev.rank != rank:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def count(self, kind: TraceKind, **detail_eq: Any) -> int:
        """Count records of *kind* whose detail matches all given keys."""
        n = 0
        for ev in self._events:
            if ev.kind is not kind:
                continue
            if all(ev.detail.get(k) == v for k, v in detail_eq.items()):
                n += 1
        return n

    def format(self, limit: int | None = None) -> str:
        """Pretty-print the (possibly truncated) timeline."""
        events = list(self._events)
        if limit is not None:
            events = events[:limit]
        lines = [ev.format() for ev in events]
        if limit is not None and len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more)")
        if self.dropped:
            lines.insert(0, f"... ({self.dropped} older records dropped)")
        return "\n".join(lines)

    def keys(self) -> list[tuple[Any, ...]]:
        """Identity view of the full trace, for determinism assertions."""
        return [ev.key() for ev in self._events]
