"""MPI group objects and set operations.

The paper notes the Open MPI prototype supports "all of MPI-1
functionality including collective and group management operations"; this
module provides the group half: immutable ordered sets of world ranks
with the standard MPI-1 set algebra (`incl`/`excl`/`union`/
`intersection`/`difference`) and rank translation.  Communicators expose
their membership as a :class:`Group` and can be carved from one with
``Comm.create`` (see :mod:`repro.simmpi.communicator`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .constants import UNDEFINED
from .errors import ErrorClass, InvalidArgumentError


class Group:
    """An immutable, ordered set of world ranks (``MPI_Group``)."""

    __slots__ = ("_ranks", "_index")

    def __init__(self, ranks: Iterable[int]) -> None:
        ranks = tuple(ranks)
        if len(set(ranks)) != len(ranks):
            raise InvalidArgumentError(
                f"group contains duplicate ranks: {ranks}",
                error_class=ErrorClass.ERR_ARG,
            )
        self._ranks = ranks
        self._index = {wr: i for i, wr in enumerate(ranks)}

    # -- introspection ------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of members (``MPI_Group_size``)."""
        return len(self._ranks)

    @property
    def ranks(self) -> tuple[int, ...]:
        """World ranks, indexed by group rank."""
        return self._ranks

    def rank_of_world(self, world_rank: int) -> int:
        """Group rank of a world rank, or ``UNDEFINED`` (``MPI_Group_rank``)."""
        return self._index.get(world_rank, UNDEFINED)

    def world_rank(self, group_rank: int) -> int:
        """World rank of a group rank."""
        if not 0 <= group_rank < len(self._ranks):
            raise InvalidArgumentError(
                f"group rank {group_rank} out of range",
                error_class=ErrorClass.ERR_RANK,
            )
        return self._ranks[group_rank]

    def translate_ranks(
        self, ranks: Sequence[int], other: "Group"
    ) -> list[int]:
        """``MPI_Group_translate_ranks``: my group ranks -> other's ranks."""
        return [other.rank_of_world(self.world_rank(r)) for r in ranks]

    # -- set algebra ----------------------------------------------------------

    def incl(self, ranks: Sequence[int]) -> "Group":
        """Subgroup of the given group ranks, in the given order."""
        return Group(self.world_rank(r) for r in ranks)

    def excl(self, ranks: Sequence[int]) -> "Group":
        """Subgroup without the given group ranks, original order kept."""
        drop = {self.world_rank(r) for r in ranks}
        return Group(wr for wr in self._ranks if wr not in drop)

    def union(self, other: "Group") -> "Group":
        """Members of self, then members of other not already present."""
        extra = [wr for wr in other._ranks if wr not in self._index]
        return Group(self._ranks + tuple(extra))

    def intersection(self, other: "Group") -> "Group":
        """Members of self that are also in other, in self's order."""
        return Group(wr for wr in self._ranks if wr in other._index)

    def difference(self, other: "Group") -> "Group":
        """Members of self not in other, in self's order."""
        return Group(wr for wr in self._ranks if wr not in other._index)

    # -- dunder ---------------------------------------------------------------

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._index

    def __len__(self) -> int:
        return len(self._ranks)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._ranks == other._ranks

    def __hash__(self) -> int:
        return hash(self._ranks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group{self._ranks}"
