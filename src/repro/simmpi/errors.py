"""MPI error classes and the exceptions used to surface them.

The run-through stabilization proposal communicates failures through the
return codes of MPI functions.  In Python, the idiomatic equivalent is an
exception hierarchy: every exception carries the :class:`ErrorClass` that
the corresponding C function would have returned, so application code can
branch on ``exc.error_class`` exactly as the paper's pseudo code branches
on ``ret``.

Two *internal* control-flow exceptions (:class:`ProcessKilled`,
:class:`SimShutdown`) derive from :class:`BaseException` so that simulated
application code using ``except Exception`` can never accidentally swallow
a fail-stop event or a simulator shutdown.
"""

from __future__ import annotations

import enum
from typing import Any


class ErrorClass(enum.IntEnum):
    """Error classes mirroring MPI, including the FT proposal's addition."""

    SUCCESS = 0
    #: A peer of the operation has failed (fail-stop) and has not been
    #: recognized on this communicator (``MPI_ERR_RANK_FAIL_STOP``).
    ERR_RANK_FAIL_STOP = 1
    ERR_RANK = 2
    ERR_TAG = 3
    ERR_COMM = 4
    ERR_COUNT = 5
    ERR_ARG = 6
    ERR_TRUNCATE = 7
    ERR_REQUEST = 8
    ERR_PENDING = 9
    ERR_ROOT = 10
    ERR_OP = 11
    ERR_INTERN = 12
    ERR_OTHER = 13
    #: The job was aborted (``MPI_Abort`` or a fatal error handler).
    ERR_ABORTED = 14
    #: The communicator was revoked (ULFM ``MPI_ERR_REVOKED``): some
    #: member called ``comm.revoke()`` and the revocation notice has
    #: reached this process, so all non-local operations on the
    #: communicator fail until it is shrunk and rebuilt.
    ERR_REVOKED = 15

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class ErrorHandler(enum.Enum):
    """Per-communicator error handler, as in the MPI standard.

    The FT proposal keeps ``ERRORS_ARE_FATAL`` as the default; fault
    tolerant applications must install ``ERRORS_RETURN`` (here: "raise a
    catchable exception") on every communicator involved in fault handling.
    """

    #: Any error aborts the whole simulated job (the default).
    ERRORS_ARE_FATAL = "fatal"
    #: Errors are reported to the caller (as a raised :class:`MPIError`).
    ERRORS_RETURN = "return"


class MPIError(Exception):
    """Base class for errors reported by simulated MPI calls.

    Attributes
    ----------
    error_class:
        The :class:`ErrorClass` a C binding would have returned.
    rank:
        Rank of the calling process, when known.
    peer:
        The remote rank involved in the failing operation, when known.
    index:
        For ``waitany``/``waitall`` style completions, the index of the
        request that completed in error (mirrors the ``idx`` out-parameter
        the paper's pseudo code inspects).
    """

    def __init__(
        self,
        message: str = "",
        *,
        error_class: ErrorClass = ErrorClass.ERR_OTHER,
        rank: int | None = None,
        peer: int | None = None,
        index: int | None = None,
    ) -> None:
        super().__init__(message or error_class.name)
        self.error_class = error_class
        self.rank = rank
        self.peer = peer
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.args[0]!r}, "
            f"error_class={self.error_class!s}, rank={self.rank}, "
            f"peer={self.peer}, index={self.index})"
        )

    def __reduce__(self) -> tuple[Any, ...]:
        # Keyword-only attributes do not survive the default exception
        # pickling (it replays ``cls(*args)``); results carrying MPI
        # errors must cross the sweep engine's process boundary intact.
        return (type(self), (self.args[0],), self.__dict__)


class RankFailStopError(MPIError):
    """``MPI_ERR_RANK_FAIL_STOP``: a peer failed and is unrecognized."""

    def __init__(self, message: str = "", **kwargs: Any) -> None:
        kwargs.setdefault("error_class", ErrorClass.ERR_RANK_FAIL_STOP)
        super().__init__(message, **kwargs)


class CommRevokedError(MPIError):
    """``MPI_ERR_REVOKED``: the communicator was revoked by a member.

    Raised by every operation entered on a revoked communicator, and
    delivered through pending receives when the revocation notice
    arrives — the ULFM mechanism that turns one rank's local error into
    a communicator-wide interrupt (Rocco & Palermo, arXiv:2209.01849).
    """

    def __init__(self, message: str = "", **kwargs: Any) -> None:
        kwargs.setdefault("error_class", ErrorClass.ERR_REVOKED)
        super().__init__(message, **kwargs)


class InvalidArgumentError(MPIError):
    """``MPI_ERR_ARG`` and friends: a malformed call."""

    def __init__(self, message: str = "", **kwargs: Any) -> None:
        kwargs.setdefault("error_class", ErrorClass.ERR_ARG)
        super().__init__(message, **kwargs)


class TruncationError(MPIError):
    """``MPI_ERR_TRUNCATE``: message longer than the posted receive."""

    def __init__(self, message: str = "", **kwargs: Any) -> None:
        kwargs.setdefault("error_class", ErrorClass.ERR_TRUNCATE)
        super().__init__(message, **kwargs)


class JobAborted(Exception):
    """The simulated job was aborted via ``MPI_Abort`` or a fatal error.

    This propagates out of :meth:`Simulation.run` (or is recorded on the
    :class:`SimulationResult`, depending on configuration).
    """

    def __init__(self, code: int, origin_rank: int, message: str = "") -> None:
        super().__init__(message or f"MPI_Abort(code={code}) by rank {origin_rank}")
        self.code = code
        self.origin_rank = origin_rank

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.code, self.origin_rank, self.args[0]))


class SimulationDeadlock(Exception):
    """Every alive process is blocked and no event can ever wake them.

    This is the simulator's *proof of a hang*: the condition the paper's
    Figure 6 scenario produces.  The exception carries a human-readable
    snapshot of what each blocked process was waiting for.
    """

    def __init__(self, description: str, blocked: list[tuple[int, str]]) -> None:
        super().__init__(description)
        #: ``[(rank, wait_description), ...]`` for every blocked process.
        self.blocked = blocked

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.args[0], self.blocked))


class SimulationError(Exception):
    """A simulated application raised an unexpected (non-MPI) exception."""

    def __init__(self, rank: int, original: BaseException) -> None:
        super().__init__(f"rank {rank} raised {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.rank, self.original))


class ProcessKilled(BaseException):
    """Internal: unwinds a simulated process that suffered fail-stop."""


class SimShutdown(BaseException):
    """Internal: unwinds still-blocked process threads at simulation end."""
