"""Communicators: groups, contexts, per-process FT state, point-to-point.

A :class:`Comm` is a *per-process* handle (as in real MPI): every rank
holds its own instance, but instances describing the same communicator
share a context id and a group.  The per-process state carried here is
exactly what the run-through stabilization proposal needs:

* the installed :class:`~repro.simmpi.errors.ErrorHandler`;
* ``recognized`` — comm ranks whose failure this process has locally
  recognized (``MPI_Comm_validate_clear``): point-to-point with them gets
  ``MPI_PROC_NULL`` semantics;
* ``validated`` — comm ranks recognized *collectively*
  (``MPI_Comm_validate_all``): collectives are re-enabled only when every
  known failure is covered by ``validated``.

Point-to-point failure semantics (paper §II):

* send/recv addressed to an **unrecognized known-failed** rank raises
  ``MPI_ERR_RANK_FAIL_STOP`` (or aborts, under ``ERRORS_ARE_FATAL``);
* addressed to a **recognized** failed rank: ``MPI_PROC_NULL`` semantics
  (immediate completion, no data);
* a receive posted on ``ANY_SOURCE`` while the communicator contains an
  unrecognized known failure raises ``MPI_ERR_RANK_FAIL_STOP``;
* pending receives complete in error the moment the detector reports the
  peer's failure (see :mod:`repro.simmpi.runtime`).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Sequence

from .constants import ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED, is_valid_tag
from .errors import (
    CommRevokedError,
    ErrorClass,
    ErrorHandler,
    InvalidArgumentError,
    MPIError,
    RankFailStopError,
)
from .request import Request, RequestKind, Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .process import SimProcess

#: Number of distinct message contexts reserved per communicator.
CONTEXTS_PER_COMM = 8
#: Offsets within a communicator's context block.
CTX_P2P = 0
CTX_COLL = 1
CTX_AM = 2  # active-message layer (consensus protocol)


class Comm:
    """A simulated MPI communicator handle for one process."""

    def __init__(
        self,
        proc: "SimProcess",
        cid: int,
        group: tuple[int, ...],
        name: str = "",
    ) -> None:
        self._proc = proc
        #: Context id; identical at every member rank.
        self.cid = cid
        #: World ranks of the members, indexed by comm rank.
        self.group = group
        #: Human-readable name for traces (``"world"``, ``"dup1"``...).
        self.name = name or f"comm{cid}"
        self.errhandler = ErrorHandler.ERRORS_ARE_FATAL
        #: Comm ranks locally recognized as failed (p2p => PROC_NULL).
        self.recognized: set[int] = set()
        #: Comm ranks collectively recognized (collectives re-enabled).
        self.validated: set[int] = set()
        #: Per-process counter aligning collective operations across ranks.
        self._coll_seq = itertools.count()
        #: Per-process counter aligning comm-creation operations.
        self._create_seq = itertools.count()
        #: Per-process counter aligning validate_all rounds.
        self._validate_seq = itertools.count()
        try:
            self._my_rank = group.index(proc.rank)
        except ValueError as exc:  # pragma: no cover - construction bug
            raise InvalidArgumentError(
                f"process {proc.rank} not in group {group}"
            ) from exc

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._my_rank

    @property
    def size(self) -> int:
        """Number of member ranks (including failed ones — fail-stop ranks
        keep their slots; that is the point of run-through stabilization)."""
        return len(self.group)

    @property
    def proc(self) -> "SimProcess":
        """The owning simulated process."""
        return self._proc

    def world_rank(self, comm_rank: int) -> int:
        """Translate a comm rank to a world rank."""
        if not 0 <= comm_rank < len(self.group):
            raise InvalidArgumentError(
                f"rank {comm_rank} out of range for {self.name} (size {self.size})",
                rank=self._my_rank,
            )
        return self.group[comm_rank]

    def comm_rank_of_world(self, world_rank: int) -> int | None:
        """Translate a world rank to a comm rank (``None`` if not a member)."""
        try:
            return self.group.index(world_rank)
        except ValueError:
            return None

    def context(self, offset: int = CTX_P2P) -> int:
        """The message context id for one of this comm's channels."""
        return self.cid * CONTEXTS_PER_COMM + offset

    # ------------------------------------------------------------------
    # Error handling
    # ------------------------------------------------------------------

    def set_errhandler(self, handler: ErrorHandler) -> None:
        """Install the communicator's error handler (paper Fig. 3 line 10)."""
        self.errhandler = handler

    def _raise(self, exc: MPIError) -> None:
        """Dispatch an MPI error through the installed handler."""
        exc.rank = self._my_rank
        if self.errhandler is ErrorHandler.ERRORS_ARE_FATAL:
            self._proc.abort(int(exc.error_class))
        raise exc

    # ------------------------------------------------------------------
    # Revocation (ULFM)
    # ------------------------------------------------------------------

    def revoke(self) -> None:
        """``MPI_Comm_revoke``: invalidate the communicator at every member.

        Local-immediate at the caller; other members learn via control
        messages.  Once a member knows, its pending receives on the
        communicator complete with ``MPI_ERR_REVOKED`` and every new
        operation raises :class:`CommRevokedError` — only the AM layer
        (consensus) keeps working, so the members can still agree on the
        failed set and shrink (:func:`repro.ft.comm_shrink`).
        """
        self._proc._mpi_call("comm_revoke")
        self._check_not_freed()
        self._proc.runtime.revoke_comm(self._proc, self)

    @property
    def is_revoked(self) -> bool:
        """Has *this process* learned that the communicator was revoked?"""
        return self._proc.runtime.is_revoked(self._proc.rank, self.cid)

    def _check_revoked(self) -> None:
        if self._proc.runtime.is_revoked(self._proc.rank, self.cid):
            self._raise(CommRevokedError(f"{self.name} has been revoked"))

    # ------------------------------------------------------------------
    # Failure knowledge (per-observer view backed by the detector)
    # ------------------------------------------------------------------

    def known_failed_comm_ranks(self) -> set[int]:
        """Comm ranks this process currently *knows* to have failed."""
        known_world = self._proc.runtime.known_failed_set(self._proc.rank)
        out = set()
        for cr, wr in enumerate(self.group):
            if wr in known_world:
                out.add(cr)
        return out

    def _known_failed(self, comm_rank: int) -> bool:
        wr = self.group[comm_rank]
        return self._proc.runtime.is_known_failed(self._proc.rank, wr)

    def _has_unrecognized_failure(self) -> bool:
        return bool(self.known_failed_comm_ranks() - self.recognized)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------

    def _check_send_args(self, dest: int, tag: int) -> None:
        if dest != PROC_NULL and not 0 <= dest < self.size:
            self._raise(
                InvalidArgumentError(
                    f"invalid destination rank {dest}",
                    error_class=ErrorClass.ERR_RANK,
                    peer=dest,
                )
            )
        if not is_valid_tag(tag):
            self._raise(
                InvalidArgumentError(
                    f"invalid tag {tag}", error_class=ErrorClass.ERR_TAG
                )
            )

    def send(
        self, payload: Any, dest: int, tag: int = 0, nbytes: int | None = None
    ) -> None:
        """Standard (eager/buffered) send.

        Raises :class:`RankFailStopError` when *dest* is known-failed and
        unrecognized — the semantic ``FT_Send_right`` (paper Fig. 5)
        depends on.
        """
        self._proc._mpi_call("send")
        self._send_common(payload, dest, tag, nbytes, op="send")

    def isend(
        self, payload: Any, dest: int, tag: int = 0, nbytes: int | None = None
    ) -> Request:
        """Non-blocking send; the returned request is already complete
        (standard sends buffer eagerly in this simulator)."""
        self._proc._mpi_call("isend")
        self._send_common(payload, dest, tag, nbytes, op="isend")
        req = Request(RequestKind.SEND, self._proc, self, peer=dest, tag=tag)
        req.complete(self._proc.now, status=Status(source=dest, tag=tag))
        return req

    def issend(
        self, payload: Any, dest: int, tag: int = 0, nbytes: int | None = None
    ) -> Request:
        """Non-blocking synchronous send: the request completes when the
        message is *matched* by a receive (or in error if the destination
        dies first)."""
        self._proc._mpi_call("issend")
        self._check_not_freed()
        self._check_revoked()
        self._check_send_args(dest, tag)
        req = Request(RequestKind.SEND, self._proc, self, peer=dest, tag=tag)
        if dest == PROC_NULL or dest in self.recognized:
            req.complete(self._proc.now, status=Status(source=dest, tag=tag))
            return req
        if self._known_failed(dest):
            req.complete(
                self._proc.now,
                error=ErrorClass.ERR_RANK_FAIL_STOP,
                status=Status(source=dest, tag=tag,
                              error=ErrorClass.ERR_RANK_FAIL_STOP),
            )
            return req
        # Like receives, pending synchronous sends carry the *world* rank in
        # ``peer`` so the detector sweep can match it against failures.
        req.peer = self.world_rank(dest)
        self._proc.runtime.post_send(
            self._proc,
            dst_world=req.peer,
            tag=tag,
            context=self.context(CTX_P2P),
            payload=payload,
            nbytes=nbytes,
            ssend_req=req,
        )
        return req

    def ssend(
        self, payload: Any, dest: int, tag: int = 0, nbytes: int | None = None
    ) -> None:
        """Blocking synchronous send (returns once matched)."""
        self._proc._mpi_call("ssend")
        req = self.issend(payload, dest, tag, nbytes)
        from .p2p import wait

        wait(req)

    def _send_common(
        self, payload: Any, dest: int, tag: int, nbytes: int | None, op: str
    ) -> None:
        self._check_not_freed()
        self._check_revoked()
        self._check_send_args(dest, tag)
        if dest == PROC_NULL:
            return
        if dest in self.recognized:
            # Recognized failed rank: MPI_PROC_NULL semantics.
            return
        if self._known_failed(dest):
            self._raise(
                RankFailStopError(
                    f"{op} to failed rank {dest} on {self.name}", peer=dest
                )
            )
        self._proc.runtime.post_send(
            self._proc,
            dst_world=self.world_rank(dest),
            tag=tag,
            context=self.context(CTX_P2P),
            payload=payload,
            nbytes=nbytes,
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive.

        The returned request completes when a matching message arrives —
        or *in error* (``MPI_ERR_RANK_FAIL_STOP``) when the failure
        detector reports the selected source failed.  That error path is
        the watchdog mechanism of paper Fig. 9.
        """
        self._proc._mpi_call("irecv")
        return self._irecv_common(source, tag)

    def _irecv_common(self, source: int, tag: int) -> Request:
        self._check_not_freed()
        self._check_revoked()
        if source != PROC_NULL and source != ANY_SOURCE:
            if not 0 <= source < self.size:
                self._raise(
                    InvalidArgumentError(
                        f"invalid source rank {source}",
                        error_class=ErrorClass.ERR_RANK,
                        peer=source,
                    )
                )
        if tag != ANY_TAG and not is_valid_tag(tag):
            self._raise(
                InvalidArgumentError(
                    f"invalid tag {tag}", error_class=ErrorClass.ERR_TAG
                )
            )
        # Requests carry *world* ranks in ``peer`` so the matching engine
        # and the failure sweep compare like with like; statuses are
        # translated back to comm ranks at completion.
        if source in (PROC_NULL, ANY_SOURCE):
            peer_world = source
        else:
            peer_world = self.world_rank(source)
        req = Request(RequestKind.RECV, self._proc, self, peer=peer_world, tag=tag)
        if source == PROC_NULL or (source != ANY_SOURCE and source in self.recognized):
            # PROC_NULL semantics: immediate empty completion.
            req.complete(
                self._proc.now,
                status=Status(source=PROC_NULL, tag=ANY_TAG, count=0),
            )
            return req
        if source != ANY_SOURCE and self._known_failed(source):
            req.complete(
                self._proc.now,
                error=ErrorClass.ERR_RANK_FAIL_STOP,
                status=Status(source=source, tag=tag,
                              error=ErrorClass.ERR_RANK_FAIL_STOP),
            )
            return req
        if source == ANY_SOURCE and self._has_unrecognized_failure():
            req.complete(
                self._proc.now,
                error=ErrorClass.ERR_RANK_FAIL_STOP,
                status=Status(source=ANY_SOURCE, tag=tag,
                              error=ErrorClass.ERR_RANK_FAIL_STOP),
            )
            return req
        self._proc.runtime.post_recv(self, req)
        return req

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, Status]:
        """Blocking receive; returns ``(payload, status)``.

        Raises through the communicator's error handler if the peer fails
        before a message arrives.
        """
        self._proc._mpi_call("recv")
        req = self._irecv_common(source, tag)
        from .p2p import wait  # local import: avoids a cycle

        status = wait(req)
        return req.data, status

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> tuple[Any, Status]:
        """Combined send+receive (deadlock-free, as in MPI)."""
        self._proc._mpi_call("sendrecv")
        req = self._irecv_common(source, recvtag)
        self._send_common(payload, dest, sendtag, None, op="sendrecv")
        from .p2p import wait

        status = wait(req)
        return req.data, status

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Blocking probe: wait until a matching message is available."""
        self._proc._mpi_call("probe")
        while True:
            st = self._iprobe_now(source, tag)
            if st is not None:
                return st
            self._proc.runtime.arrival_block(self._proc, "probe")

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Non-blocking probe; ``None`` if no matching message arrived yet."""
        self._proc._mpi_call("iprobe")
        st = self._iprobe_now(source, tag)
        if st is None:
            self._proc.runtime.poll_block(self._proc, "iprobe")
            st = self._iprobe_now(source, tag)
        return st

    def _iprobe_now(self, source: int, tag: int) -> Status | None:
        self._check_revoked()
        if source != ANY_SOURCE and self._known_failed(source) and source not in self.recognized:
            self._raise(RankFailStopError(f"probe of failed rank {source}", peer=source))
        if source == ANY_SOURCE and self._has_unrecognized_failure():
            self._raise(RankFailStopError("probe ANY_SOURCE with unrecognized failure"))
        src_world = ANY_SOURCE if source == ANY_SOURCE else self.world_rank(source)
        msg = self._proc.engine.probe(src_world, tag, self.context(CTX_P2P))
        if msg is None:
            return None
        src_cr = self.comm_rank_of_world(msg.src)
        return Status(source=src_cr if src_cr is not None else msg.src,
                      tag=msg.tag, count=msg.nbytes)

    # ------------------------------------------------------------------
    # Communicator management
    # ------------------------------------------------------------------

    def dup(self, name: str = "") -> "Comm":
        """Collectively duplicate the communicator.

        Per the FT proposal, failures must be re-recognized on the new
        communicator: the duplicate starts with empty ``recognized`` /
        ``validated`` sets even if the parent had recognized failures.
        """
        self._proc._mpi_call("comm_dup")
        op_index = next(self._create_seq)
        cid = self._proc.runtime.cid_for(self.cid, op_index)
        return Comm(self._proc, cid, self.group, name or f"{self.name}.dup{op_index}")

    def group_obj(self) -> "Group":
        """The communicator's membership as a :class:`Group`."""
        from .group import Group

        return Group(self.group)

    def create(self, group: "Group", name: str = "") -> "Comm | None":
        """``MPI_Comm_create``: carve a communicator for *group*.

        Collective over the *parent*: every member must call with the same
        group.  Members outside *group* receive ``None``.  Implemented as
        a color split, so it inherits the parent's collective failure
        semantics.
        """
        self._proc._mpi_call("comm_create")
        from .constants import UNDEFINED as _UNDEF

        color = 0 if self._proc.rank in group else _UNDEF
        try:
            key = group.rank_of_world(self._proc.rank)
        except Exception:  # pragma: no cover - defensive
            key = 0
        return self.split(color=color, key=key if key >= 0 else 0,
                          name=name or f"{self.name}.create")

    def free(self) -> None:
        """``MPI_Comm_free``: mark the handle unusable (local bookkeeping).

        Subsequent operations through this handle raise ``ERR_COMM``.
        """
        self._proc._mpi_call("comm_free")
        self._freed = True

    def _check_not_freed(self) -> None:
        if getattr(self, "_freed", False):
            self._raise(
                InvalidArgumentError(
                    f"{self.name} has been freed",
                    error_class=ErrorClass.ERR_COMM,
                )
            )

    def replace_rank(self, comm_rank: int, world_rank: int) -> None:
        """Patch *comm_rank*'s slot to a new world rank (in-place repair).

        The non-collective reparation primitive (Rocco & Palermo,
        arXiv:2209.01849) used by the partial-restart protocol: the
        communicator keeps its cid — so messages already in flight between
        surviving members still arrive — while a failed member's slot is
        re-pointed at a freshly recruited spare.  Every survivor must
        apply the same patch (driven by an agreed failed set); the spare
        constructs its own handle with the patched group.  Recognition
        state for the slot is cleared: the slot is alive again.
        """
        if not 0 <= comm_rank < len(self.group):
            raise InvalidArgumentError(
                f"rank {comm_rank} out of range for {self.name}",
                rank=self._my_rank,
            )
        group = list(self.group)
        group[comm_rank] = world_rank
        self.group = tuple(group)
        self.recognized.discard(comm_rank)
        self.validated.discard(comm_rank)
        self._my_rank = self.group.index(self._proc.rank)

    def split(self, color: int, key: int = 0, name: str = "") -> "Comm | None":
        """Collectively split by color (``UNDEFINED`` => no new comm).

        Implemented over a real allgather on the parent communicator, so it
        inherits the parent's failure semantics (it errors if the parent
        has unrecognized failures, exactly like any collective).
        """
        self._proc._mpi_call("comm_split")
        from .collectives import allgather

        op_index = next(self._create_seq)
        triples = allgather(self, (color, key, self.rank))
        members: list[tuple[int, int, int]] = [
            t for t in triples if t is not None and t[0] == color and color != UNDEFINED
        ]
        if color == UNDEFINED:
            return None
        members.sort(key=lambda t: (t[1], t[2]))
        group = tuple(self.group[t[2]] for t in members)
        cid = self._proc.runtime.cid_for(self.cid, op_index, color=color)
        return Comm(self._proc, cid, group, name or f"{self.name}.split{op_index}.{color}")

    # Collective entry points (implementations live in collectives.py).

    def barrier(self) -> None:
        """Collective barrier over the validated membership."""
        from .collectives import barrier

        barrier(self)

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast from *root*; returns the payload at every rank."""
        from .collectives import bcast

        return bcast(self, payload, root)

    def reduce(self, value: Any, op: str | Any = "sum", root: int = 0) -> Any:
        """Reduce to *root*; returns the result at root, ``None`` elsewhere."""
        from .collectives import reduce as _reduce

        return _reduce(self, value, op, root)

    def allreduce(self, value: Any, op: str | Any = "sum") -> Any:
        """Reduce-to-all."""
        from .collectives import allreduce

        return allreduce(self, value, op)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather to *root* (list indexed by comm rank; failed-validated
        ranks contribute ``None``)."""
        from .collectives import gather

        return gather(self, value, root)

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter from *root*."""
        from .collectives import scatter

        return scatter(self, values, root)

    def allgather(self, value: Any) -> list[Any]:
        """Gather-to-all (ring algorithm)."""
        from .collectives import allgather

        return allgather(self, value)

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all exchange."""
        from .collectives import alltoall

        return alltoall(self, values)

    def scan(self, value: Any, op: str | Any = "sum") -> Any:
        """Inclusive prefix reduction."""
        from .collectives import scan

        return scan(self, value, op)

    def exscan(self, value: Any, op: str | Any = "sum") -> Any:
        """Exclusive prefix reduction (participant 0 gets ``None``)."""
        from .collectives import exscan

        return exscan(self, value, op)

    def reduce_scatter(self, values: Sequence[Any], op: str | Any = "sum") -> Any:
        """Reduce per-rank slots, scatter slot ``i`` to comm rank ``i``."""
        from .collectives import reduce_scatter

        return reduce_scatter(self, values, op)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Comm({self.name}, cid={self.cid}, rank={self.rank}/{self.size}, "
            f"recognized={sorted(self.recognized)}, validated={sorted(self.validated)})"
        )
