"""Requests and statuses for non-blocking operations.

A :class:`Request` is the handle returned by ``isend``/``irecv`` (and by
the non-blocking validate collective).  Requests are completed by the
runtime — on message match, on send buffering, on consensus decision, or
*in error* when the failure detector learns that a peer of the operation
has failed.  That last path is the load-bearing semantic of the paper: a
pending receive posted to a rank that subsequently fails completes with
``MPI_ERR_RANK_FAIL_STOP``, which is what lets the ring use a posted
``MPI_Irecv`` as a failure detector for its right-hand neighbor.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable

from .constants import ANY_SOURCE, ANY_TAG
from .errors import ErrorClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .communicator import Comm
    from .process import SimProcess


class Status:
    """Completion information for one operation (``MPI_Status``)."""

    __slots__ = ("source", "tag", "error", "count", "cancelled")

    def __init__(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        error: ErrorClass = ErrorClass.SUCCESS,
        count: int = 0,
        cancelled: bool = False,
    ) -> None:
        self.source = source
        self.tag = tag
        self.error = error
        self.count = count
        self.cancelled = cancelled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Status(source={self.source}, tag={self.tag}, "
            f"error={self.error!s}, count={self.count})"
        )


class RequestKind(enum.Enum):
    """What operation a request tracks."""

    SEND = "send"
    RECV = "recv"
    VALIDATE = "validate"  # non-blocking collective validate
    GENERIC = "generic"  # internal / extension requests


class Request:
    """Handle for a pending non-blocking operation.

    The runtime completes a request exactly once, either successfully (with
    a payload for receives) or with an :class:`ErrorClass`.  Processes
    blocked in ``wait*`` on the request are woken at the completion's
    virtual time.
    """

    __slots__ = (
        "id",
        "kind",
        "comm",
        "owner",
        "peer",
        "tag",
        "done",
        "error",
        "status",
        "data",
        "completion_time",
        "cancelled",
        "_waiters",
        "_on_complete",
        "user_label",
        "context",
    )

    def __init__(
        self,
        kind: RequestKind,
        owner: "SimProcess",
        comm: "Comm | None" = None,
        peer: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        label: str = "",
    ) -> None:
        # Per-simulation id so identical seeds yield identical traces.
        self.id = owner.runtime.next_request_id()
        self.kind = kind
        self.owner = owner
        self.comm = comm
        #: Remote rank of the operation (source for recv, dest for send).
        self.peer = peer
        self.tag = tag
        self.done = False
        self.error: ErrorClass | None = None
        self.status: Status | None = None
        #: For receives: the delivered payload.  For validates: the decision.
        self.data: Any = None
        self.completion_time: float | None = None
        self.cancelled = False
        self._waiters: list[SimProcess] = []
        self._on_complete: list[Callable[[Request], None]] = []
        self.user_label = label
        #: Message context the request was posted under (set by the
        #: runtime at post time; the failure sweep uses it to identify
        #: collective-context receives).
        self.context: int | None = None

    # -- runtime side -----------------------------------------------------

    def complete(
        self,
        time: float,
        *,
        error: ErrorClass | None = None,
        status: Status | None = None,
        data: Any = None,
    ) -> None:
        """Mark the request complete and wake any waiters.

        Completing an already-complete request is a runtime bug and raises.
        """
        if self.done:
            raise RuntimeError(f"request {self.id} completed twice")
        self.done = True
        self.error = error if error not in (None, ErrorClass.SUCCESS) else None
        self.status = status or Status(error=self.error or ErrorClass.SUCCESS)
        if self.error is not None:
            self.status.error = self.error
        self.data = data
        self.completion_time = time
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc.wake(time, f"request {self.id} complete")
        callbacks, self._on_complete = self._on_complete, []
        for cb in callbacks:
            cb(self)

    def add_waiter(self, proc: "SimProcess") -> None:
        """Register *proc* to be woken when this request completes."""
        if proc not in self._waiters:
            self._waiters.append(proc)

    def remove_waiter(self, proc: "SimProcess") -> None:
        """Unregister a waiter (after a wait returns or is abandoned)."""
        if proc in self._waiters:
            self._waiters.remove(proc)

    def on_complete(self, cb: Callable[["Request"], None]) -> None:
        """Register a runtime callback fired at completion (AM layer glue)."""
        if self.done:
            cb(self)
        else:
            self._on_complete.append(cb)

    def cancel(self) -> None:
        """Cancel a pending receive (best-effort, as in MPI).

        A completed request cannot be cancelled.  Cancelling removes the
        posted receive from the matching engine via the owner's runtime.
        """
        if self.done:
            return
        self.cancelled = True
        self.owner.runtime.cancel_request(self)

    def failed(self) -> bool:
        """True if the request completed in error."""
        return self.done and self.error is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "pending"
            if not self.done
            else ("error:" + str(self.error) if self.error else "ok")
        )
        return (
            f"Request(id={self.id}, {self.kind.value}, owner={self.owner.rank}, "
            f"peer={self.peer}, tag={self.tag}, {state})"
        )
