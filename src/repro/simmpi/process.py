"""The simulated MPI process.

A :class:`SimProcess` couples one scheduler fiber with the per-process
runtime state: a local virtual clock (which may run ahead of the global
clock during local computation), the message matching engine, the MPI call
counter used by fault injectors, and the handful of application-facing
helpers (``compute``, ``probe_point``, ``log``, ``abort``).

Application code receives a :class:`SimProcess` as its only argument and
reaches MPI through :attr:`SimProcess.comm_world` (or communicators
derived from it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, NoReturn

from .errors import JobAborted
from .fibers import BaseFiber, FiberState
from .matching import MatchingEngine
from .trace import TraceKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .communicator import Comm
    from .runtime import Runtime


class SimProcess:
    """One simulated MPI rank.

    Application-facing surface: :attr:`rank`, :attr:`size`,
    :attr:`comm_world`, :attr:`now`, :meth:`compute`, :meth:`sleep`,
    :meth:`probe_point`, :meth:`log`, :meth:`abort`.  Everything else is
    runtime plumbing.
    """

    def __init__(self, runtime: "Runtime", rank: int) -> None:
        self.runtime = runtime
        self.rank = rank
        #: Local virtual clock; monotone, may lead the global clock.
        self.now = 0.0
        self.engine = MatchingEngine(rank)
        self.fiber: BaseFiber | None = None  # attached by the runtime
        #: Number of MPI calls this process has issued (fault injection).
        self.call_count = 0
        #: Hit counts per probe-point name (fault injection windows).
        self.probe_counts: dict[str, int] = {}
        #: World communicator handle for this process.
        self.comm_world: "Comm | None" = None
        #: Failure time if this process failed (ground truth).
        self.failed_at: float | None = None
        #: Set while the process sleeps awaiting any message arrival
        #: (blocking probe); the transport wakes it on the next delivery.
        self.wants_arrival_wake = False

    # ------------------------------------------------------------------
    # Application-facing helpers
    # ------------------------------------------------------------------

    @property
    def index(self) -> int:
        """Scheduling-policy index (the world rank)."""
        return self.rank

    @property
    def size(self) -> int:
        """World size (number of ranks the job started with)."""
        return self.runtime.nprocs

    def compute(self, dt: float) -> None:
        """Model *dt* virtual seconds of local computation.

        The process yields to the simulator and resumes once the virtual
        clock has advanced, letting other ranks' events interleave exactly
        as they would during a real compute phase.
        """
        if dt < 0:
            raise ValueError("compute() requires dt >= 0")
        self._mpi_call("compute")
        deadline = self.now + dt
        self.runtime.schedule_wake(self, deadline, "compute")
        while self.now < deadline:
            self.block(f"compute until t={deadline:.9f}")
        self.now = max(self.now, deadline)

    def sleep(self, dt: float) -> None:
        """Alias of :meth:`compute` (idle instead of busy; same cost)."""
        self.compute(dt)

    def probe_point(self, name: str) -> None:
        """Mark a named fault-injection window in application code.

        Fault schedules can kill a rank "at the k-th hit of probe ``name``",
        which is how the benchmark harness reproduces the paper's
        failure-between-recv-and-send scenarios deterministically.
        """
        hit = self.probe_counts.get(name, 0) + 1
        self.probe_counts[name] = hit
        trace = self.runtime.trace
        if trace.enabled:
            trace.record(self.now, TraceKind.PROBE, self.rank, name=name,
                         hit=hit)
        self.runtime.check_injection(self, probe=name)

    def log(self, message: str, **detail: Any) -> None:
        """Record an application message in the simulation trace."""
        trace = self.runtime.trace
        if trace.enabled:
            trace.record(
                self.now, TraceKind.USER, self.rank, message=message, **detail
            )

    def abort(self, code: int = -1) -> NoReturn:
        """``MPI_Abort``: terminate the entire simulated job."""
        self.runtime.trace.record(self.now, TraceKind.ABORT, self.rank, code=code)
        self.runtime.trigger_abort(JobAborted(code, self.rank))

    # ------------------------------------------------------------------
    # Runtime plumbing
    # ------------------------------------------------------------------

    def attach_fiber(self, fiber: BaseFiber) -> None:
        self.fiber = fiber

    @property
    def state(self) -> FiberState:
        assert self.fiber is not None
        return self.fiber.state

    def alive(self) -> bool:
        """Ground truth: has this process *not* suffered fail-stop?"""
        return self.failed_at is None

    def block(self, reason: str) -> None:
        """Yield to the scheduler until woken (called from the fiber thread)."""
        assert self.fiber is not None
        obs = self.runtime.obs
        if obs is not None:
            obs.fiber_blocked(self.rank, self.now)
        self.fiber.state = FiberState.BLOCKED
        self.fiber.block_reason = reason
        self.fiber.yield_to_scheduler()

    def wake(self, time: float, why: str) -> None:
        """Make this process runnable at virtual *time* (scheduler thread)."""
        assert self.fiber is not None
        self.now = max(self.now, time)
        if self.fiber.state is FiberState.BLOCKED:
            obs = self.runtime.obs
            if obs is not None:
                obs.fiber_woken(self.rank, self.now)
            self.fiber.state = FiberState.READY
            self.fiber.block_reason = ""
            self.runtime.enqueue_ready(self)

    def _mpi_call(self, opname: str) -> None:
        """Per-call hook: bump the call counter, consult fault injection."""
        if self.failed_at is not None:
            # A killed process never re-enters MPI; unwind immediately.
            from .errors import ProcessKilled

            raise ProcessKilled()
        self.call_count += 1
        self.runtime.check_injection(self, op=opname)

    def wait_description(self) -> str:
        """What this process is blocked on (deadlock reports)."""
        assert self.fiber is not None
        return self.fiber.block_reason or "<running>"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        st = self.fiber.state.value if self.fiber else "detached"
        return f"SimProcess(rank={self.rank}, t={self.now:.9f}, {st})"
