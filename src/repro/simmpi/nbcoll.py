"""Non-blocking collectives driven by the progress engine.

``MPI_Ibarrier`` is scheduled for MPI 3.0 in the paper's timeline and its
§III-C discusses — and rejects — building termination detection from
"multiple calls to MPI_Ibarrier ... inspecting combinations of return
codes".  To reproduce that discussion honestly we implement a real
non-blocking dissemination barrier as an active-message state machine, so
application threads can overlap it with point-to-point work (exactly like
the non-blocking validate).

Failure semantics follow the run-through stabilization rules for
collectives:

* entering an ibarrier while the communicator has failures not covered by
  a collective validate completes the request with
  ``MPI_ERR_RANK_FAIL_STOP`` immediately;
* a failure striking mid-barrier errors the request at the ranks that
  still owe rounds, while ranks whose rounds already completed return
  success — the *inconsistent return codes* the paper warns about.

This is precisely why ibarrier-retry termination cannot work under the
proposal (collectives stay disabled until ``MPI_Comm_validate_all``), and
the ablation benchmark demonstrates it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .communicator import Comm
from .errors import ErrorClass
from .request import Request, RequestKind, Status
from .trace import TraceKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .matching import Message
    from .runtime import Runtime

#: Context offset used by non-blocking collectives (distinct from the
#: consensus engine's CTX_AM).
CTX_NBC = 3

_ENGINE_ATTR = "_nbc_engine"


@dataclass
class _BarrierMsg:
    """Wire format of one ibarrier signal."""

    cid: int
    instance: int
    round: int
    sender: int  # world rank


@dataclass
class _BarrierSM:
    """Per-(rank, comm, instance) dissemination-barrier state."""

    owner: int
    cid: int
    instance: int
    comm: Comm | None = None
    request: Request | None = None
    started: bool = False
    done: bool = False
    round: int = 0
    participants: tuple[int, ...] = ()  # world ranks
    #: rounds for which the expected signal already arrived (early ones).
    got: set[int] = field(default_factory=set)


class IBarrierEngine:
    """Progress engine for every rank's in-flight ibarriers."""

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        self._sms: dict[tuple[int, int, int], _BarrierSM] = {}
        self._handling: set[tuple[int, int]] = set()
        self._listening: set[int] = set()

    def ensure_comm(self, comm: Comm) -> None:
        ctx = comm.context(CTX_NBC)
        for wr in comm.group:
            if (wr, ctx) not in self._handling:
                self._handling.add((wr, ctx))
                self.runtime.register_am_handler(
                    wr, ctx, lambda msg, t, r=wr: self._on_message(r, msg, t)
                )
            if wr not in self._listening:
                self._listening.add(wr)
                self.runtime.add_failure_listener(
                    wr, lambda obs, failed, t: self._on_failure(obs, failed, t)
                )

    def _sm(self, owner: int, cid: int, instance: int) -> _BarrierSM:
        key = (owner, cid, instance)
        sm = self._sms.get(key)
        if sm is None:
            sm = _BarrierSM(owner=owner, cid=cid, instance=instance)
            self._sms[key] = sm
        return sm

    # -- local call ---------------------------------------------------------

    def start(self, comm: Comm, instance: int, request: Request) -> None:
        self.ensure_comm(comm)
        proc = comm.proc
        sm = self._sm(proc.rank, comm.cid, instance)
        sm.comm = comm
        sm.request = request
        sm.started = True
        known = comm.known_failed_comm_ranks()
        if not known <= comm.validated:
            self._fail(sm, proc.now)
            return
        sm.participants = tuple(
            comm.world_rank(cr)
            for cr in range(comm.size)
            if cr not in comm.validated
        )
        if len(sm.participants) <= 1:
            self._complete(sm, proc.now)
            return
        self._enter_round(sm, 0, proc.now)

    # -- protocol -----------------------------------------------------------

    def _idx(self, sm: _BarrierSM) -> int:
        return sm.participants.index(sm.owner)

    def _enter_round(self, sm: _BarrierSM, r: int, time: float) -> None:
        assert sm.comm is not None
        sm.round = r
        m = len(sm.participants)
        peer = sm.participants[(self._idx(sm) + (1 << r)) % m]
        self.runtime.send_am(
            sm.owner,
            peer,
            sm.comm.context(CTX_NBC),
            _BarrierMsg(cid=sm.cid, instance=sm.instance, round=r,
                        sender=sm.owner),
        )
        self._advance(sm, time)

    def _advance(self, sm: _BarrierSM, time: float) -> None:
        while sm.started and not sm.done:
            m = len(sm.participants)
            if (1 << sm.round) >= m:
                self._complete(sm, time)
                return
            if sm.round not in sm.got:
                # Check whether the expected sender is known dead — the
                # collective then fails at this rank.
                expected = sm.participants[(self._idx(sm) - (1 << sm.round)) % m]
                if expected in self.runtime.known_failed_set(sm.owner):
                    self._fail(sm, time)
                return
            self._enter_round(sm, sm.round + 1, time)

    def _complete(self, sm: _BarrierSM, time: float) -> None:
        sm.done = True
        assert sm.request is not None
        self.runtime.trace.record(
            time, TraceKind.COLLECTIVE, sm.owner,
            op="ibarrier", outcome="ok", instance=sm.instance,
        )
        sm.request.complete(time, status=Status())

    def _fail(self, sm: _BarrierSM, time: float) -> None:
        sm.done = True
        assert sm.request is not None
        self.runtime.trace.record(
            time, TraceKind.COLLECTIVE, sm.owner,
            op="ibarrier", outcome="fail_stop", instance=sm.instance,
        )
        sm.request.complete(
            time,
            error=ErrorClass.ERR_RANK_FAIL_STOP,
            status=Status(error=ErrorClass.ERR_RANK_FAIL_STOP),
        )

    # -- event-context inputs -------------------------------------------------

    def _on_message(self, owner: int, msg: "Message", time: float) -> None:
        bm: _BarrierMsg = msg.payload
        sm = self._sm(owner, bm.cid, bm.instance)
        sm.got.add(bm.round)
        if sm.started and not sm.done:
            self._advance(sm, time)

    def _on_failure(self, observer: int, failed: int, time: float) -> None:
        for sm in list(self._sms.values()):
            if sm.owner != observer or not sm.started or sm.done:
                continue
            assert sm.comm is not None
            cr = sm.comm.comm_rank_of_world(failed)
            if cr is not None:
                self._advance(sm, time)


def engine_for(runtime: "Runtime") -> IBarrierEngine:
    """Get (or lazily create) the simulation's ibarrier engine."""
    engine = getattr(runtime, _ENGINE_ATTR, None)
    if engine is None:
        engine = IBarrierEngine(runtime)
        setattr(runtime, _ENGINE_ATTR, engine)
    return engine


def ibarrier(comm: Comm) -> Request:
    """Non-blocking barrier over the validated membership of *comm*.

    Returns a request that completes when every participant has entered
    the barrier — or completes with ``MPI_ERR_RANK_FAIL_STOP`` under the
    collective failure rules described in the module docstring.
    """
    proc = comm.proc
    proc._mpi_call("ibarrier")
    instance = next(_instance_counter(comm))
    req = Request(RequestKind.GENERIC, proc, comm, label=f"ibarrier#{instance}")
    engine_for(proc.runtime).start(comm, instance, req)
    return req


def _instance_counter(comm: Comm):
    counter = getattr(comm, "_nbc_seq", None)
    if counter is None:
        counter = itertools.count()
        comm._nbc_seq = counter  # type: ignore[attr-defined]
    return counter
