"""Deterministic cooperative scheduling of simulated processes.

Each simulated MPI rank runs ordinary Python code on its own OS thread,
but **exactly one thread executes at any instant**: the scheduler hands a
baton to one fiber, which runs until it blocks inside a simulated MPI call
(or finishes), at which point the baton returns to the scheduler.  Because
the code between two MPI calls is plain sequential Python, and because the
scheduler picks the next runnable fiber with a deterministic policy, the
entire simulation is reproducible bit-for-bit from its seed.

This file knows nothing about MPI; it provides:

* :class:`Fiber` — the baton-passing wrapper around one thread,
* :class:`SchedulingPolicy` implementations — which runnable fiber goes
  next (round-robin by rank, or seeded-random for interleaving
  exploration),
* kill/shutdown plumbing: a fiber can be made to unwind with
  :class:`~repro.simmpi.errors.ProcessKilled` (fail-stop) or
  :class:`~repro.simmpi.errors.SimShutdown` (end of simulation).
"""

from __future__ import annotations

import enum
import heapq
import random
import threading
from collections import deque
from typing import Callable

from .errors import ProcessKilled, SimShutdown


class FiberState(enum.Enum):
    """Lifecycle of a fiber."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"  # fail-stop: thread unwound via ProcessKilled


class Fiber:
    """One simulated process: a thread that runs only when handed the baton."""

    def __init__(self, name: str, index: int, target: Callable[[], None]) -> None:
        self.name = name
        #: Dense index (the MPI world rank) used by scheduling policies.
        self.index = index
        self.state = FiberState.NEW
        #: Human-readable reason the fiber is blocked (deadlock reports).
        self.block_reason = ""
        #: Set when the fiber must unwind with ProcessKilled on next resume.
        self.kill_pending = False
        #: Set when the fiber must unwind with SimShutdown on next resume.
        self.shutdown_pending = False
        #: Exception raised by the user target, if any (not kill/shutdown).
        self.error: BaseException | None = None
        #: Return value of the user target, if it completed normally.
        self.result: object = None
        self._target = target
        self._resume = threading.Event()
        self._yielded = threading.Event()
        self._thread = threading.Thread(
            target=self._bootstrap, name=name, daemon=True
        )

    # -- thread side ------------------------------------------------------

    def _bootstrap(self) -> None:
        try:
            # The initial baton wait sits inside the try: a kill or
            # shutdown can arrive before the fiber's first slice.
            self._wait_for_baton()
            self.result = self._target()
            self.state = FiberState.DONE
        except ProcessKilled:
            self.state = FiberState.FAILED
        except SimShutdown:
            self.state = FiberState.DONE
        except BaseException as exc:  # noqa: BLE001 - reported to driver
            self.error = exc
            self.state = FiberState.DONE
        finally:
            self._yielded.set()

    def _wait_for_baton(self) -> None:
        self._resume.wait()
        self._resume.clear()
        if self.kill_pending:
            raise ProcessKilled()
        if self.shutdown_pending:
            raise SimShutdown()

    def yield_to_scheduler(self) -> None:
        """Called *from the fiber's own thread* when it blocks.

        Returns when the scheduler resumes this fiber, or raises
        :class:`ProcessKilled` / :class:`SimShutdown` if the fiber was
        killed or the simulation ended while it was blocked.
        """
        self._yielded.set()
        self._wait_for_baton()

    # -- scheduler side ---------------------------------------------------

    def start(self) -> None:
        """Launch the underlying thread (it immediately awaits the baton)."""
        self.state = FiberState.READY
        self._thread.start()

    def resume_and_wait(self) -> None:
        """Hand the baton to this fiber and wait until it yields or exits."""
        self.state = FiberState.RUNNING
        self._resume.set()
        self._yielded.wait()
        self._yielded.clear()

    def finished(self) -> bool:
        return self.state in (FiberState.DONE, FiberState.FAILED)

    def join(self, timeout: float | None = 5.0) -> None:
        """Join the underlying thread (used during simulator teardown)."""
        if self._thread.is_alive():
            self._thread.join(timeout)

    def release(self) -> None:
        """Drop the reference to the application target after the thread
        has exited, so a retained Fiber (e.g. via a kept Simulation)
        cannot pin per-run application state alive across a long sweep.
        Safe no-op while the thread still runs."""
        if not self._thread.is_alive():
            self._target = _released


def _released() -> None:  # pragma: no cover - never executed
    raise RuntimeError("fiber target was released after thread exit")


class SchedulingPolicy:
    """Chooses which of the runnable fibers executes next.

    A policy may keep runnable fibers in an internal structure between
    picks (see :class:`LowestRankFirstPolicy`); the runtime therefore
    asks :meth:`has_ready` — not the raw queue — whether anything is
    runnable.
    """

    def pick(self, ready: deque[Fiber]) -> Fiber:  # pragma: no cover - abstract
        raise NotImplementedError

    def has_ready(self, ready: deque[Fiber]) -> bool:
        """Is any fiber runnable (in *ready* or held by the policy)?"""
        return bool(ready)

    def reset(self) -> None:
        """Forget any internal state (called once per simulation)."""


class RoundRobinPolicy(SchedulingPolicy):
    """FIFO over the ready queue: fair, deterministic, and cheap."""

    def pick(self, ready: deque[Fiber]) -> Fiber:
        return ready.popleft()


class LowestRankFirstPolicy(SchedulingPolicy):
    """Always run the lowest-index runnable fiber.

    Produces highly regular interleavings; useful for writing tests whose
    expected traces are easy to reason about by hand.

    The ready set is kept index-ordered in a heap: each pick drains new
    arrivals from the queue and pops the minimum in O(log n), instead of
    the old O(n) scan-and-delete of the deque on every simulated MPI
    handoff.  Ties on index break by arrival order (FIFO), matching the
    scan's earliest-position choice exactly.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Fiber]] = []
        self._seq = 0

    def reset(self) -> None:
        self._heap.clear()
        self._seq = 0

    def pick(self, ready: deque[Fiber]) -> Fiber:
        while ready:
            fiber = ready.popleft()
            heapq.heappush(self._heap, (fiber.index, self._seq, fiber))
            self._seq += 1
        return heapq.heappop(self._heap)[2]

    def has_ready(self, ready: deque[Fiber]) -> bool:
        return bool(ready) or bool(self._heap)


class RandomPolicy(SchedulingPolicy):
    """Seeded-random choice among runnable fibers.

    Different seeds explore different interleavings of the *same* program,
    which is how the fault-scenario explorer shakes out ordering-dependent
    bugs; a fixed seed is still fully deterministic.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def pick(self, ready: deque[Fiber]) -> Fiber:
        pos = self._rng.randrange(len(ready))
        fiber = ready[pos]
        del ready[pos]
        return fiber


def make_policy(spec: str | SchedulingPolicy, seed: int = 0) -> SchedulingPolicy:
    """Build a policy from a string spec (``"rr"``, ``"lowest"``, ``"random"``)."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    if spec == "rr":
        return RoundRobinPolicy()
    if spec == "lowest":
        return LowestRankFirstPolicy()
    if spec == "random":
        return RandomPolicy(seed)
    raise ValueError(f"unknown scheduling policy: {spec!r}")
