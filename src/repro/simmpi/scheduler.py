"""Deterministic cooperative scheduling of simulated processes.

Each simulated MPI rank runs ordinary Python code as a *fiber*: it
executes until it blocks inside a simulated MPI call (or finishes), at
which point control returns to the scheduler, which picks the next
runnable fiber with a deterministic policy.  **Exactly one fiber executes
at any instant**, so the entire simulation is reproducible bit-for-bit
from its seed.

The scheduling layer is split in two:

* :mod:`repro.simmpi.fibers` — *how* a fiber's call stack suspends.  Two
  pluggable backends implement one API: the pure-stdlib thread-baton
  fallback (:class:`~repro.simmpi.fibers.ThreadFiber`) and the optional
  single-threaded greenlet backend
  (:class:`~repro.simmpi.fibers.GreenletFiber`, zero-lock handoffs,
  ``pip install repro[fast]``).  Kill/fail-stop and shutdown unwinding
  (:class:`~repro.simmpi.errors.ProcessKilled` /
  :class:`~repro.simmpi.errors.SimShutdown`) behave identically on both.
* this module — *which* runnable fiber goes next: the
  :class:`SchedulingPolicy` implementations (round-robin, lowest rank
  first, or seeded-random for interleaving exploration).

Policies see only fiber indices and arrival order — never the suspension
mechanism — which is why traces are byte-identical across fiber backends
(pinned by the backend × policy golden matrix in
``tests/test_determinism_golden.py``).

The fiber classes are re-exported here for backward compatibility.
"""

from __future__ import annotations

import heapq
import random
from collections import deque

# Re-exported fiber API (implementations live in repro.simmpi.fibers).
from .fibers import (  # noqa: F401 - backward-compatible re-exports
    BaseFiber,
    Fiber,
    FiberState,
    GreenletFiber,
    ThreadFiber,
    _released,
)


class SchedulingPolicy:
    """Chooses which of the runnable fibers executes next.

    A policy may keep runnable fibers in an internal structure between
    picks (see :class:`LowestRankFirstPolicy`); the runtime therefore
    asks :meth:`has_ready` — not the raw queue — whether anything is
    runnable.
    """

    def pick(self, ready: deque[BaseFiber]) -> BaseFiber:  # pragma: no cover - abstract
        raise NotImplementedError

    def has_ready(self, ready: deque[BaseFiber]) -> bool:
        """Is any fiber runnable (in *ready* or held by the policy)?"""
        return bool(ready)

    def reset(self) -> None:
        """Forget any internal state (called once per simulation)."""


class RoundRobinPolicy(SchedulingPolicy):
    """FIFO over the ready queue: fair, deterministic, and cheap."""

    def pick(self, ready: deque[BaseFiber]) -> BaseFiber:
        return ready.popleft()


class LowestRankFirstPolicy(SchedulingPolicy):
    """Always run the lowest-index runnable fiber.

    Produces highly regular interleavings; useful for writing tests whose
    expected traces are easy to reason about by hand.

    The ready set is kept index-ordered in a heap: each pick drains new
    arrivals from the queue and pops the minimum in O(log n), instead of
    the old O(n) scan-and-delete of the deque on every simulated MPI
    handoff.  Ties on index break by arrival order (FIFO), matching the
    scan's earliest-position choice exactly.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, BaseFiber]] = []
        self._seq = 0

    def reset(self) -> None:
        self._heap.clear()
        self._seq = 0

    def pick(self, ready: deque[BaseFiber]) -> BaseFiber:
        while ready:
            fiber = ready.popleft()
            heapq.heappush(self._heap, (fiber.index, self._seq, fiber))
            self._seq += 1
        return heapq.heappop(self._heap)[2]

    def has_ready(self, ready: deque[BaseFiber]) -> bool:
        return bool(ready) or bool(self._heap)


class RandomPolicy(SchedulingPolicy):
    """Seeded-random choice among runnable fibers.

    Different seeds explore different interleavings of the *same* program,
    which is how the fault-scenario explorer shakes out ordering-dependent
    bugs; a fixed seed is still fully deterministic.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def pick(self, ready: deque[BaseFiber]) -> BaseFiber:
        pos = self._rng.randrange(len(ready))
        fiber = ready[pos]
        del ready[pos]
        return fiber


def make_policy(spec: str | SchedulingPolicy, seed: int = 0) -> SchedulingPolicy:
    """Build a policy from a string spec (``"rr"``, ``"lowest"``, ``"random"``)."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    if spec == "rr":
        return RoundRobinPolicy()
    if spec == "lowest":
        return LowestRankFirstPolicy()
    if spec == "random":
        return RandomPolicy(seed)
    raise ValueError(f"unknown scheduling policy: {spec!r}")
