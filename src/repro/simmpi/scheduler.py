"""Deterministic cooperative scheduling of simulated processes.

Each simulated MPI rank runs ordinary Python code on its own OS thread,
but **exactly one thread executes at any instant**: the scheduler hands a
baton to one fiber, which runs until it blocks inside a simulated MPI call
(or finishes), at which point the baton returns to the scheduler.  Because
the code between two MPI calls is plain sequential Python, and because the
scheduler picks the next runnable fiber with a deterministic policy, the
entire simulation is reproducible bit-for-bit from its seed.

This file knows nothing about MPI; it provides:

* :class:`Fiber` — the baton-passing wrapper around one thread,
* :class:`SchedulingPolicy` implementations — which runnable fiber goes
  next (round-robin by rank, or seeded-random for interleaving
  exploration),
* kill/shutdown plumbing: a fiber can be made to unwind with
  :class:`~repro.simmpi.errors.ProcessKilled` (fail-stop) or
  :class:`~repro.simmpi.errors.SimShutdown` (end of simulation).
"""

from __future__ import annotations

import enum
import heapq
import os
import random
import threading
from collections import deque
from typing import Callable

from .errors import ProcessKilled, SimShutdown


class _FiberWorker:
    """One pooled OS thread that runs fiber bootstraps back to back.

    Creating an OS thread costs tens of microseconds plus scheduler
    setup; a sweep that runs thousands of short simulations pays that
    for every rank of every run.  Workers instead park on a private
    pre-acquired lock between assignments: :meth:`submit` hands them the
    next fiber, and after the fiber's bootstrap returns they re-enter
    the pool.  A worker only ever runs one fiber at a time and a fiber
    is only submitted once, so the baton protocol is unchanged.
    """

    __slots__ = ("_task", "_task_ready", "thread")

    def __init__(self) -> None:
        self._task: "Fiber | None" = None
        self._task_ready = threading.Lock()
        self._task_ready.acquire()
        self.thread = threading.Thread(
            target=self._run, name="sim-fiber-worker", daemon=True
        )
        self.thread.start()

    def _run(self) -> None:
        while True:
            self._task_ready.acquire()
            fiber = self._task
            self._task = None
            if fiber is None:  # pragma: no cover - retirement path
                return
            fiber._bootstrap()
            if not _POOL.offer(self):
                return  # pool full (or forked child): let the thread die

    def submit(self, fiber: "Fiber") -> None:
        self._task = fiber
        self._task_ready.release()


class _WorkerPool:
    """Process-wide free list of idle fiber workers (fork-aware)."""

    def __init__(self, max_idle: int = 64) -> None:
        self._lock = threading.Lock()
        self._idle: list[_FiberWorker] = []
        self._pid = os.getpid()
        self._max_idle = max_idle

    def get(self) -> _FiberWorker:
        with self._lock:
            if self._pid != os.getpid():
                # Forked child: inherited workers' threads do not exist
                # here; drop the bookkeeping and start fresh.
                self._idle.clear()
                self._pid = os.getpid()
            if self._idle:
                return self._idle.pop()
        return _FiberWorker()

    def offer(self, worker: _FiberWorker) -> bool:
        """Return *worker* to the pool; False tells it to retire."""
        with self._lock:
            if self._pid == os.getpid() and len(self._idle) < self._max_idle:
                self._idle.append(worker)
                return True
        return False  # pragma: no cover - overflow/fork retirement


_POOL = _WorkerPool()


class FiberState(enum.Enum):
    """Lifecycle of a fiber."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"  # fail-stop: thread unwound via ProcessKilled


class Fiber:
    """One simulated process: a thread that runs only when handed the baton.

    The baton is a ladder of two raw pre-acquired :class:`threading.Lock`
    objects — ``_resume`` (scheduler → fiber) and ``_yielded`` (fiber →
    scheduler).  Both start locked; a handoff is one ``release`` on the
    peer's lock plus one blocking ``acquire`` on your own, so a full
    round-trip costs four uncontended C-level lock operations.  The
    previous two-``threading.Event`` baton paid set/wait/clear (each a
    condition-variable dance) on both sides — six Python-level event
    operations per simulated MPI call.  Correctness relies on the strict
    alternation the scheduler already guarantees: exactly one thread runs
    at any instant, so each lock is released exactly once per handoff and
    re-locked by the blocking acquire that consumes the release.
    """

    __slots__ = (
        "name",
        "index",
        "state",
        "block_reason",
        "kill_pending",
        "shutdown_pending",
        "error",
        "result",
        "_target",
        "_resume",
        "_yielded",
        "_worker",
    )

    def __init__(self, name: str, index: int, target: Callable[[], None]) -> None:
        self.name = name
        #: Dense index (the MPI world rank) used by scheduling policies.
        self.index = index
        self.state = FiberState.NEW
        #: Human-readable reason the fiber is blocked (deadlock reports).
        self.block_reason = ""
        #: Set when the fiber must unwind with ProcessKilled on next resume.
        self.kill_pending = False
        #: Set when the fiber must unwind with SimShutdown on next resume.
        self.shutdown_pending = False
        #: Exception raised by the user target, if any (not kill/shutdown).
        self.error: BaseException | None = None
        #: Return value of the user target, if it completed normally.
        self.result: object = None
        self._target = target
        # Both rungs start locked; see the class docstring for the protocol.
        self._resume = threading.Lock()
        self._resume.acquire()
        self._yielded = threading.Lock()
        self._yielded.acquire()
        # Assigned on start(): a pooled worker thread (see _FiberWorker).
        self._worker: _FiberWorker | None = None

    # -- thread side ------------------------------------------------------

    def _bootstrap(self) -> None:
        try:
            # The initial baton wait sits inside the try: a kill or
            # shutdown can arrive before the fiber's first slice.
            self._wait_for_baton()
            self.result = self._target()
            self.state = FiberState.DONE
        except ProcessKilled:
            self.state = FiberState.FAILED
        except SimShutdown:
            self.state = FiberState.DONE
        except BaseException as exc:  # noqa: BLE001 - reported to driver
            self.error = exc
            self.state = FiberState.DONE
        finally:
            self._yielded.release()

    def _wait_for_baton(self) -> None:
        self._resume.acquire()
        if self.kill_pending:
            raise ProcessKilled()
        if self.shutdown_pending:
            raise SimShutdown()

    def yield_to_scheduler(self) -> None:
        """Called *from the fiber's own thread* when it blocks.

        Returns when the scheduler resumes this fiber, or raises
        :class:`ProcessKilled` / :class:`SimShutdown` if the fiber was
        killed or the simulation ended while it was blocked.
        """
        self._yielded.release()
        self._wait_for_baton()

    # -- scheduler side ---------------------------------------------------

    def start(self) -> None:
        """Hand this fiber to a pooled thread (it immediately awaits the
        baton)."""
        self.state = FiberState.READY
        self._worker = _POOL.get()
        self._worker.submit(self)

    def resume_and_wait(self) -> None:
        """Hand the baton to this fiber and wait until it yields or exits."""
        self.state = FiberState.RUNNING
        self._resume.release()
        self._yielded.acquire()

    def finished(self) -> bool:
        return self.state in (FiberState.DONE, FiberState.FAILED)

    def join(self, timeout: float | None = 5.0) -> None:
        """Wait for the fiber's bootstrap to complete (simulator teardown).

        Pooled worker threads outlive the fiber, so there is no OS thread
        to join; completion is already synchronized by the baton —
        ``resume_and_wait`` only returns after the bootstrap's ``finally``
        released the yield lock, at which point the worker holds no
        reference into application code.  A started-but-unfinished fiber
        (only possible through misuse: teardown resumes every parked
        fiber first) is left alone, exactly like a hung thread was.
        """

    def release(self) -> None:
        """Drop the reference to the application target once the fiber
        has finished, so a retained Fiber (e.g. via a kept Simulation)
        cannot pin per-run application state alive across a long sweep.
        Safe no-op while the fiber still runs."""
        if self.finished():
            self._target = _released
            self._worker = None


def _released() -> None:  # pragma: no cover - never executed
    raise RuntimeError("fiber target was released after thread exit")


class SchedulingPolicy:
    """Chooses which of the runnable fibers executes next.

    A policy may keep runnable fibers in an internal structure between
    picks (see :class:`LowestRankFirstPolicy`); the runtime therefore
    asks :meth:`has_ready` — not the raw queue — whether anything is
    runnable.
    """

    def pick(self, ready: deque[Fiber]) -> Fiber:  # pragma: no cover - abstract
        raise NotImplementedError

    def has_ready(self, ready: deque[Fiber]) -> bool:
        """Is any fiber runnable (in *ready* or held by the policy)?"""
        return bool(ready)

    def reset(self) -> None:
        """Forget any internal state (called once per simulation)."""


class RoundRobinPolicy(SchedulingPolicy):
    """FIFO over the ready queue: fair, deterministic, and cheap."""

    def pick(self, ready: deque[Fiber]) -> Fiber:
        return ready.popleft()


class LowestRankFirstPolicy(SchedulingPolicy):
    """Always run the lowest-index runnable fiber.

    Produces highly regular interleavings; useful for writing tests whose
    expected traces are easy to reason about by hand.

    The ready set is kept index-ordered in a heap: each pick drains new
    arrivals from the queue and pops the minimum in O(log n), instead of
    the old O(n) scan-and-delete of the deque on every simulated MPI
    handoff.  Ties on index break by arrival order (FIFO), matching the
    scan's earliest-position choice exactly.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Fiber]] = []
        self._seq = 0

    def reset(self) -> None:
        self._heap.clear()
        self._seq = 0

    def pick(self, ready: deque[Fiber]) -> Fiber:
        while ready:
            fiber = ready.popleft()
            heapq.heappush(self._heap, (fiber.index, self._seq, fiber))
            self._seq += 1
        return heapq.heappop(self._heap)[2]

    def has_ready(self, ready: deque[Fiber]) -> bool:
        return bool(ready) or bool(self._heap)


class RandomPolicy(SchedulingPolicy):
    """Seeded-random choice among runnable fibers.

    Different seeds explore different interleavings of the *same* program,
    which is how the fault-scenario explorer shakes out ordering-dependent
    bugs; a fixed seed is still fully deterministic.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def pick(self, ready: deque[Fiber]) -> Fiber:
        pos = self._rng.randrange(len(ready))
        fiber = ready[pos]
        del ready[pos]
        return fiber


def make_policy(spec: str | SchedulingPolicy, seed: int = 0) -> SchedulingPolicy:
    """Build a policy from a string spec (``"rr"``, ``"lowest"``, ``"random"``)."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    if spec == "rr":
        return RoundRobinPolicy()
    if spec == "lowest":
        return LowestRankFirstPolicy()
    if spec == "random":
        return RandomPolicy(seed)
    raise ValueError(f"unknown scheduling policy: {spec!r}")
